//! End-to-end consultation sessions — the Fig. 1 flow, over the bus.
//!
//! One consultation: the agent asks the inventor for advice, receives
//! advice-with-proof, forwards it to every currently-trusted verifier,
//! pools the verdicts by majority, updates reputations, and adopts the
//! advice only on acceptance. Every hop crosses the [`Bus`], so the outcome
//! carries exact byte counts.
//!
//! Two layers live here. [`SessionDriver`] is the *protocol*: it runs one
//! Fig. 1 message flow against whatever bus, inventor, verifier panel and
//! reputation backend it was assembled with. [`RationalityAuthority`] is
//! the single-bus *orchestration* on top: it owns one driver, assigns
//! game ids and exposes the classic `consult` API. The sharded, multi-bus
//! orchestration lives in [`crate::ShardedAuthority`], which reuses the
//! same driver per shard.
//!
//! The driver is deliberately ignorant of reputation *policy*: whether
//! verdicts are pooled one-verifier-one-vote or stake-weighted
//! ([`crate::VoteRule`]), whether scores decay
//! ([`crate::ReputationDecay`]), and whether the scores are shard-local
//! or gossiped engine-wide all live behind the [`ReputationBackend`]
//! trait, so the Fig. 1 flow never changes when the plane does.
//!
//! The flow is also the engine's *hot path*, and it is written to stay
//! off the allocator and off contended locks in the steady state: endpoint
//! drains reuse one receive buffer ([`Endpoint::drain_into`]), the
//! verdict fan-out and the replies each ship as one [`Bus::send_batch`]
//! accounting critical section from a reused staging buffer, and trust
//! checks read a single immutable
//! [`crate::ReputationSnapshot`] taken at the top of the
//! fan-out instead of locking the backend per verifier.

use std::collections::HashMap;
use std::sync::Arc;

use crate::bus::Bus;
use crate::cache::{spec_digest, CacheMode, CachedConsultation, CertCache};
use crate::inventor::{GameSpec, Inventor};
use crate::messages::{Advice, Message, Party};
use crate::reputation::{LocalReputation, MajorityOutcome, ReputationBackend};
use crate::transport::{Endpoint, Transport};
use crate::verifier::{kernel_check, VerifierService};
use crate::wire::Wire;

/// Outcome of one consultation.
#[derive(Clone, Debug)]
pub struct SessionOutcome {
    /// The advice received (if the inventor answered).
    pub advice: Option<Advice>,
    /// The pooled verdict (if advice was received and verifiers exist).
    pub majority: Option<MajorityOutcome>,
    /// Whether the agent adopts the advice.
    pub adopted: bool,
    /// Wire bytes of the advice message itself (Lemma 1 measurements).
    pub advice_bytes: usize,
    /// Total wire bytes of the whole session.
    pub session_bytes: usize,
    /// Per-verifier verdict details, for the audit log.
    pub verdict_details: Vec<(Party, bool, String)>,
    /// Whether this outcome was served from the certificate cache (no
    /// protocol messages flowed: `session_bytes` is zero, `majority` /
    /// `verdict_details` replay the cold session's, and the reputation
    /// plane was not touched).
    pub cached: bool,
}

/// The reusable per-consultation protocol: one bus, one inventor, one
/// verifier panel, one reputation backend, and the endpoints of every
/// registered party.
///
/// [`SessionDriver::run`] executes exactly one Fig. 1 flow for an explicit
/// `game_id`; id assignment and routing are the caller's concern, which is
/// what lets a single driver serve both the monolithic
/// [`RationalityAuthority`] and each shard of a
/// [`crate::ShardedAuthority`]. The reputation plane is pluggable: by
/// default a driver owns a private [`LocalReputation`], but
/// [`SessionDriver::with_reputation`] accepts any shared
/// [`ReputationBackend`] — a gossiping one, say — without the protocol
/// changing at all.
pub struct SessionDriver {
    bus: Arc<dyn Transport>,
    reputation: Arc<dyn ReputationBackend>,
    inventor: Inventor,
    verifiers: Vec<VerifierService>,
    endpoints: HashMap<Party, Endpoint>,
    /// Reusable receive buffer: every endpoint drain on the hot path lands
    /// here via [`Endpoint::drain_into`], so steady-state consults never
    /// allocate a fresh inbox `Vec`.
    recv_buf: Vec<(Party, Message)>,
    /// Reusable fan-out buffer for [`Bus::send_batch`]: verdict requests
    /// and verdict replies are staged here and shipped in one accounting
    /// critical section each.
    send_buf: Vec<(Party, Party, Message)>,
    /// Optional content-addressed certificate cache, shared across drivers
    /// (`None` — the default — leaves the protocol bit-for-bit unchanged).
    cert_cache: Option<Arc<CertCache>>,
}

impl SessionDriver {
    /// Assembles a driver with a private [`LocalReputation`] backend:
    /// registers the inventor and every verifier on a fresh bus.
    pub fn new(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
    ) -> SessionDriver {
        SessionDriver::with_reputation(
            inventor,
            verifier_behaviors,
            Arc::new(LocalReputation::new()),
        )
    }

    /// Assembles a driver around an explicit reputation backend (shared
    /// with other drivers when `reputation` is a cross-shard plane).
    pub fn with_reputation(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
        reputation: Arc<dyn ReputationBackend>,
    ) -> SessionDriver {
        SessionDriver::with_transport(
            inventor,
            verifier_behaviors,
            reputation,
            Arc::new(Bus::new()),
        )
    }

    /// Assembles a driver over an explicit [`Transport`] — the perfect
    /// [`Bus`], a lossy [`crate::SimNet`], or anything else implementing
    /// the trait. The protocol itself is transport-agnostic; only the
    /// fate of its frames changes.
    pub fn with_transport(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
        reputation: Arc<dyn ReputationBackend>,
        bus: Arc<dyn Transport>,
    ) -> SessionDriver {
        let mut endpoints = HashMap::new();
        endpoints.insert(inventor.id, bus.register(inventor.id));
        let verifiers: Vec<VerifierService> = verifier_behaviors
            .iter()
            .enumerate()
            .map(|(i, &b)| VerifierService::new(i as u64, b))
            .collect();
        for v in &verifiers {
            endpoints.insert(v.id, bus.register(v.id));
        }
        SessionDriver {
            bus,
            reputation,
            inventor,
            verifiers,
            endpoints,
            recv_buf: Vec::new(),
            send_buf: Vec::new(),
            cert_cache: None,
        }
    }

    /// Attaches a shared certificate cache: subsequent [`SessionDriver::run`]
    /// calls consult it before running the Fig. 1 protocol and memoize
    /// their results into it.
    pub fn set_cert_cache(&mut self, cache: Arc<CertCache>) {
        self.cert_cache = Some(cache);
    }

    /// The attached certificate cache, if any.
    pub fn cert_cache(&self) -> Option<&Arc<CertCache>> {
        self.cert_cache.as_ref()
    }

    /// The reputation backend consulted by this driver's sessions.
    pub fn reputation(&self) -> &dyn ReputationBackend {
        &*self.reputation
    }

    /// The underlying transport (byte accounting, fault injection).
    pub fn bus(&self) -> &dyn Transport {
        &*self.bus
    }

    /// Registers the agent's endpoint on first contact; later calls reuse
    /// the existing endpoint rather than re-registering.
    pub fn ensure_agent(&mut self, agent: Party) {
        if !self.endpoints.contains_key(&agent) {
            let endpoint = self.bus.register(agent);
            self.endpoints.insert(agent, endpoint);
        }
    }

    /// Runs one consultation for `agent` about `spec`, under the
    /// caller-assigned `game_id`.
    ///
    /// With no certificate cache attached (the default) this *is* the full
    /// Fig. 1 protocol. With one attached, the spec's digest is looked up
    /// first: a hit short-circuits the protocol entirely — zero bus bytes,
    /// no reputation update, `cached: true` — after replaying the
    /// `ra-proofs` kernel check when the cache is in
    /// [`CacheMode::Replay`] (a verdict mismatch discards the hit and
    /// falls back to the full protocol). Misses run the protocol and
    /// memoize the result.
    pub fn run(&mut self, agent: Party, game_id: u64, spec: &GameSpec) -> SessionOutcome {
        let Some(cache) = self.cert_cache.clone() else {
            return self.run_protocol(agent, game_id, spec);
        };
        let digest = spec_digest(spec);
        // Replay hits are panel-guarded: an entry minted under a
        // different trusted-verifier set (ReputationSnapshot
        // panel_version) is treated as a miss, so exclusions invalidate
        // warm advice. Trust mode serves the digest hit unconditionally.
        let panel_guard = match cache.mode() {
            CacheMode::Replay => Some(self.reputation.snapshot().panel_version()),
            CacheMode::Trust => None,
        };
        if let Some(entry) = cache.lookup(&digest, panel_guard) {
            match cache.mode() {
                CacheMode::Trust => return Self::outcome_from_cache(&entry),
                CacheMode::Replay => {
                    let (kernel_accepts, _) = kernel_check(spec, &entry.advice);
                    if kernel_accepts == entry.kernel_accepts {
                        return Self::outcome_from_cache(&entry);
                    }
                    cache.note_replay_failure();
                }
            }
        }
        let outcome = self.run_protocol(agent, game_id, spec);
        if let Some(advice) = &outcome.advice {
            // Record the kernel's own verdict once, so replay hits compare
            // kernel-to-kernel (deterministic) rather than against the
            // panel's — possibly corrupt — adoption decision.
            let (kernel_accepts, _) = kernel_check(spec, advice);
            cache.insert(
                digest,
                CachedConsultation {
                    advice: advice.clone(),
                    kernel_accepts,
                    majority: outcome.majority.clone(),
                    adopted: outcome.adopted,
                    advice_bytes: outcome.advice_bytes,
                    verdict_details: outcome.verdict_details.clone(),
                    // Stamped *after* run_protocol, so an exclusion caused
                    // by this very consult is already reflected.
                    panel_version: self.reputation.snapshot().panel_version(),
                },
            );
        }
        outcome
    }

    /// Materializes a cache hit: the stored session's result with zero
    /// fresh bus traffic.
    fn outcome_from_cache(entry: &CachedConsultation) -> SessionOutcome {
        SessionOutcome {
            advice: Some(entry.advice.clone()),
            majority: entry.majority.clone(),
            adopted: entry.adopted,
            advice_bytes: entry.advice_bytes,
            session_bytes: 0,
            verdict_details: entry.verdict_details.clone(),
            cached: true,
        }
    }

    /// The full Fig. 1 message flow (always what runs on a cache miss or
    /// with no cache attached).
    fn run_protocol(&mut self, agent: Party, game_id: u64, spec: &GameSpec) -> SessionOutcome {
        self.ensure_agent(agent);
        let bytes_before = self.bus.total_bytes();

        // 1. Agent → inventor: request.
        self.bus
            .send(agent, self.inventor.id, Message::AdviceRequest { game_id })
            .expect("inventor registered");
        // Inventor processes its queue. Drains reuse `recv_buf` so the
        // steady state allocates no inbox Vec per hop. Every drain is
        // preceded by a settle so latency-delayed frames land first (a
        // no-op on the perfect bus).
        self.bus.settle();
        self.recv_buf.clear();
        self.endpoints[&self.inventor.id].drain_into(&mut self.recv_buf);
        let mut advice: Option<Advice> = None;
        for (from, msg) in self.recv_buf.drain(..) {
            if let (Message::AdviceRequest { game_id: gid }, true) = (&msg, from == agent) {
                if *gid == game_id {
                    advice = self.inventor.advise(spec);
                }
            }
        }
        let mut advice_bytes = 0;
        if let Some(a) = advice {
            // Single recipient: the advice moves into the frame (the agent
            // hands it back through its endpoint below), so the inventor→
            // agent hop costs no payload clone.
            let msg = Message::AdviceWithProof {
                game_id,
                advice: Box::new(a),
            };
            advice_bytes = msg.encoded_len();
            self.bus
                .send(self.inventor.id, agent, msg)
                .expect("agent registered");
        }
        // Agent receives.
        self.bus.settle();
        self.recv_buf.clear();
        self.endpoints[&agent].drain_into(&mut self.recv_buf);
        let received = self.recv_buf.drain(..).find_map(|(_, m)| match m {
            Message::AdviceWithProof { advice, .. } => Some(*advice),
            _ => None,
        });
        let Some(received_advice) = received else {
            return SessionOutcome {
                advice: None,
                majority: None,
                adopted: false,
                advice_bytes: 0,
                session_bytes: self.bus.total_bytes() - bytes_before,
                verdict_details: Vec::new(),
                cached: false,
            };
        };

        // 2. Agent → trusted verifiers: verdict requests (and replies).
        // The same advice fans out to the whole panel, so it is shared:
        // every frame is a reference-count bump, not a proof-tree clone.
        // Trust checks read one immutable snapshot taken here — the
        // backend's data lock is untouched until the verdicts pool, so a
        // gossip merge on another shard never contends with this fan-out
        // (and the panel seen by one consult is always a whole epoch).
        let reputation_view = self.reputation.snapshot();
        let advice_payload = Arc::new(received_advice);
        self.send_buf.clear();
        for verifier in &self.verifiers {
            if !reputation_view.is_trusted(verifier.id) {
                continue;
            }
            self.send_buf.push((
                agent,
                verifier.id,
                Message::VerdictRequest {
                    game_id,
                    advice: Arc::clone(&advice_payload),
                },
            ));
        }
        // One accounting critical section for the whole request fan-out;
        // send_batch drains the buffer so its allocation is reused.
        self.bus
            .send_batch(&mut self.send_buf)
            .expect("verifier registered");
        // Each verifier processes its queue; the replies batch the same
        // way back to the agent.
        self.bus.settle();
        let mut verdict_details = Vec::new();
        for verifier in &self.verifiers {
            if !reputation_view.is_trusted(verifier.id) {
                continue;
            }
            self.recv_buf.clear();
            self.endpoints[&verifier.id].drain_into(&mut self.recv_buf);
            for (from, msg) in self.recv_buf.drain(..) {
                if let Message::VerdictRequest { advice, .. } = msg {
                    let (accepted, detail) = verifier.verify(spec, &advice);
                    self.send_buf.push((
                        verifier.id,
                        from,
                        Message::Verdict {
                            game_id,
                            accepted,
                            detail: detail.clone(),
                        },
                    ));
                    verdict_details.push((verifier.id, accepted, detail));
                }
            }
        }
        self.bus
            .send_batch(&mut self.send_buf)
            .expect("agent registered");
        // Agent collects verdicts.
        self.bus.settle();
        let mut verdicts: Vec<(Party, bool)> = Vec::new();
        self.recv_buf.clear();
        self.endpoints[&agent].drain_into(&mut self.recv_buf);
        for (from, msg) in self.recv_buf.drain(..) {
            if let Message::Verdict { accepted, .. } = msg {
                verdicts.push((from, accepted));
            }
        }

        // 3. Majority + reputation update.
        let majority = if verdicts.is_empty() {
            None
        } else {
            Some(self.reputation.pool_verdicts(&verdicts))
        };
        let adopted = majority.as_ref().is_some_and(|m| m.accepted);
        // Every verifier has processed its queue, so the shared payload is
        // normally unique again and unwraps without copying.
        let received_advice = Arc::try_unwrap(advice_payload).unwrap_or_else(|a| (*a).clone());
        SessionOutcome {
            advice: Some(received_advice),
            majority,
            adopted,
            advice_bytes,
            session_bytes: self.bus.total_bytes() - bytes_before,
            verdict_details,
            cached: false,
        }
    }
}

/// The assembled single-bus infrastructure: one [`SessionDriver`] plus
/// game-id assignment.
///
/// # Examples
///
/// ```
/// use ra_authority::{
///     GameSpec, Inventor, InventorBehavior, RationalityAuthority, VerifierBehavior,
/// };
/// use ra_games::named::prisoners_dilemma;
///
/// let mut authority = RationalityAuthority::new(
///     Inventor::new(0, InventorBehavior::Honest),
///     &[VerifierBehavior::Honest; 3],
/// );
/// let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
/// let outcome = authority.consult(0, &spec);
/// assert!(outcome.adopted);
/// ```
pub struct RationalityAuthority {
    driver: SessionDriver,
    next_game_id: u64,
}

impl RationalityAuthority {
    /// Builds the infrastructure with one inventor, the given verifier
    /// panel, and a private [`LocalReputation`] backend.
    pub fn new(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
    ) -> RationalityAuthority {
        RationalityAuthority {
            driver: SessionDriver::new(inventor, verifier_behaviors),
            next_game_id: 1,
        }
    }

    /// Builds the infrastructure around an explicit reputation backend
    /// (how [`crate::ShardedAuthority`] wires every shard to one gossip
    /// plane).
    pub fn with_reputation(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
        reputation: Arc<dyn ReputationBackend>,
    ) -> RationalityAuthority {
        RationalityAuthority {
            driver: SessionDriver::with_reputation(inventor, verifier_behaviors, reputation),
            next_game_id: 1,
        }
    }

    /// Attaches a shared certificate cache (see
    /// [`SessionDriver::set_cert_cache`]).
    pub fn set_cert_cache(&mut self, cache: Arc<CertCache>) {
        self.driver.set_cert_cache(cache);
    }

    /// The attached certificate cache, if any.
    pub fn cert_cache(&self) -> Option<&Arc<CertCache>> {
        self.driver.cert_cache()
    }

    /// The reputation backend consulted by this authority's sessions.
    pub fn reputation(&self) -> &dyn ReputationBackend {
        self.driver.reputation()
    }

    /// Builds the infrastructure over an explicit [`Transport`] (see
    /// [`SessionDriver::with_transport`]).
    pub fn with_transport(
        inventor: Inventor,
        verifier_behaviors: &[crate::verifier::VerifierBehavior],
        reputation: Arc<dyn ReputationBackend>,
        transport: Arc<dyn Transport>,
    ) -> RationalityAuthority {
        RationalityAuthority {
            driver: SessionDriver::with_transport(
                inventor,
                verifier_behaviors,
                reputation,
                transport,
            ),
            next_game_id: 1,
        }
    }

    /// The underlying transport (byte accounting, fault injection).
    pub fn bus(&self) -> &dyn Transport {
        self.driver.bus()
    }

    /// Runs one full consultation for agent `agent_id` about `spec`.
    pub fn consult(&mut self, agent_id: u64, spec: &GameSpec) -> SessionOutcome {
        let game_id = self.next_game_id;
        self.next_game_id += 1;
        self.driver.run(Party::Agent(agent_id), game_id, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inventor::InventorBehavior;
    use crate::verifier::VerifierBehavior;
    use ra_games::named::{battle_of_the_sexes, prisoners_dilemma};
    use ra_solvers::ParticipationParams;

    fn all_specs() -> Vec<GameSpec> {
        use ra_exact::rat;
        vec![
            GameSpec::Strategic(prisoners_dilemma().to_strategic()),
            GameSpec::Bimatrix(battle_of_the_sexes()),
            GameSpec::Participation(ParticipationParams::paper_example()),
            GameSpec::ParallelLinks {
                current_loads: vec![rat(5, 1), rat(2, 1), rat(0, 1)],
                own_load: rat(3, 1),
                expected_future_load: rat(2, 1),
                expected_future_agents: 4,
            },
        ]
    }

    #[test]
    fn honest_end_to_end_adopts_everywhere() {
        for spec in all_specs() {
            let mut authority = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Honest),
                &[VerifierBehavior::Honest; 3],
            );
            let outcome = authority.consult(0, &spec);
            assert!(outcome.adopted, "spec {spec:?}");
            assert!(outcome.advice_bytes > 0);
            assert!(outcome.session_bytes >= outcome.advice_bytes);
            let majority = outcome.majority.unwrap();
            assert_eq!(majority.accept_votes, 3);
        }
    }

    #[test]
    fn corrupt_inventor_rejected_everywhere() {
        for spec in all_specs() {
            let mut authority = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Corrupt),
                &[VerifierBehavior::Honest; 3],
            );
            let outcome = authority.consult(0, &spec);
            assert!(!outcome.adopted, "spec {spec:?}");
            assert!(outcome.advice.is_some(), "advice was given but rejected");
        }
    }

    #[test]
    fn silent_inventor_yields_no_adoption() {
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Silent),
            &[VerifierBehavior::Honest; 3],
        );
        let outcome = authority.consult(0, &all_specs()[0]);
        assert!(!outcome.adopted);
        assert!(outcome.advice.is_none());
    }

    #[test]
    fn minority_of_bad_verifiers_is_outvoted() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        // 3 honest + 2 rubber-stampers, corrupt inventor: majority rejects.
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Corrupt),
            &[
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::AlwaysAccept,
                VerifierBehavior::AlwaysAccept,
            ],
        );
        let outcome = authority.consult(0, &spec);
        assert!(!outcome.adopted);
        let majority = outcome.majority.unwrap();
        assert_eq!(majority.accept_votes, 2);
        assert_eq!(majority.reject_votes, 3);
    }

    #[test]
    fn deviant_verifiers_lose_reputation_and_get_excluded() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::AlwaysReject,
            ],
        );
        let saboteur = Party::Verifier(2);
        for round in 0..20 {
            let outcome = authority.consult(round, &spec);
            assert!(outcome.adopted, "honest majority keeps adopting");
        }
        assert!(!authority.reputation().is_trusted(saboteur));
        // Once excluded, consultations proceed with the remaining panel.
        let outcome = authority.consult(99, &spec);
        assert_eq!(outcome.verdict_details.len(), 2);
        assert!(outcome.adopted);
    }

    #[test]
    fn support_certificate_bytes_are_small() {
        // Lemma 1, measured end-to-end: the advice message for a bimatrix
        // game is dominated by framing, not payoffs.
        let spec = GameSpec::Bimatrix(battle_of_the_sexes());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest],
        );
        let outcome = authority.consult(0, &spec);
        assert!(outcome.adopted);
        assert!(
            outcome.advice_bytes < 32,
            "P1 advice should be tens of bytes, got {}",
            outcome.advice_bytes
        );
    }

    #[test]
    fn dropped_advice_link_fails_gracefully() {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest],
        );
        authority
            .bus()
            .drop_link(Party::Inventor(0), Party::Agent(0));
        let outcome = authority.consult(0, &spec);
        assert!(!outcome.adopted);
        assert!(outcome.advice.is_none());
    }

    #[test]
    fn trust_hit_skips_the_protocol_entirely() {
        use crate::cache::CertCacheConfig;
        for spec in all_specs() {
            let mut authority = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Honest),
                &[VerifierBehavior::Honest; 3],
            );
            authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::trust(64))));
            let cold = authority.consult(0, &spec);
            assert!(!cold.cached);
            assert!(cold.session_bytes > 0);
            let bus_bytes_after_cold = authority.bus().total_bytes();
            let hit = authority.consult(1, &spec);
            assert!(hit.cached, "second consult of the same spec hits");
            assert_eq!(hit.session_bytes, 0, "a hit moves zero bus bytes");
            assert_eq!(
                authority.bus().total_bytes(),
                bus_bytes_after_cold,
                "Lemma 1 ledger untouched by the hit"
            );
            assert_eq!(hit.advice, cold.advice);
            assert_eq!(hit.majority, cold.majority);
            assert_eq!(hit.adopted, cold.adopted);
            assert_eq!(hit.advice_bytes, cold.advice_bytes);
            let stats = authority.cert_cache().unwrap().stats();
            assert_eq!((stats.hits, stats.misses), (1, 1));
        }
    }

    #[test]
    fn replay_hit_rechecks_the_kernel_and_matches_cold() {
        use crate::cache::CertCacheConfig;
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::replay(64))));
        let cold = authority.consult(0, &spec);
        let hit = authority.consult(1, &spec);
        assert!(hit.cached);
        assert_eq!(hit.advice, cold.advice);
        assert_eq!(hit.adopted, cold.adopted);
        assert_eq!(hit.verdict_details, cold.verdict_details);
        let stats = authority.cert_cache().unwrap().stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.replay_failures, 0);
    }

    #[test]
    fn exclusion_between_prime_and_probe_invalidates_replay_hits() {
        // The PR 7 follow-up: a Replay-mode hit must not serve advice
        // vouched for under an older verifier panel. Prime the cache on
        // one spec, drive a saboteur below the exclusion threshold with
        // *different* consultations, then probe the primed spec: the
        // panel version moved, so the probe re-runs the full protocol
        // (and re-primes the entry under the new panel).
        use crate::cache::CertCacheConfig;
        let primed = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let churn = GameSpec::Bimatrix(battle_of_the_sexes());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::AlwaysReject,
            ],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::replay(64))));
        let cold = authority.consult(0, &primed);
        assert!(!cold.cached);
        assert!(
            authority.consult(1, &primed).cached,
            "warm hit before the panel changes"
        );
        let panel_before = authority.reputation().snapshot().panel_version();
        // Score churn alone (every cold consult republishes) must not
        // invalidate: consult a different spec while the saboteur is
        // still above threshold.
        authority.consult(2, &churn);
        assert!(
            authority.consult(3, &primed).cached,
            "score drift within the trusted band keeps hitting"
        );
        // Now drive the saboteur to exclusion with distinct cold specs
        // (warm hits would skip the protocol and never move scores); the
        // panel version moves exactly once, at the threshold crossing.
        let saboteur = Party::Verifier(2);
        let mut rounds: u64 = 0;
        while authority.reputation().is_trusted(saboteur) {
            let distinct = GameSpec::ParallelLinks {
                current_loads: vec![ra_exact::rat(rounds as i64 + 1, 1)],
                own_load: ra_exact::rat(1, 1),
                expected_future_load: ra_exact::rat(1, 1),
                expected_future_agents: 1,
            };
            authority.consult(100 + rounds, &distinct);
            rounds += 1;
            assert!(rounds < 50, "saboteur must be excluded eventually");
        }
        assert!(
            authority.reputation().snapshot().panel_version() > panel_before,
            "exclusion bumps the panel version"
        );
        let probe = authority.consult(999, &primed);
        assert!(
            !probe.cached,
            "the stale hit is treated as a miss after the exclusion"
        );
        assert_eq!(
            probe.verdict_details.len(),
            2,
            "the probe re-ran under the reduced panel"
        );
        assert!(authority.cert_cache().unwrap().stats().stale >= 1);
        // The probe re-primed the entry under the new panel.
        assert!(authority.consult(1000, &primed).cached);
    }

    #[test]
    fn replay_caches_rejected_advice_too() {
        // A corrupt inventor's advice fails the kernel; the cached entry
        // records that verdict, so replay hits reproduce the rejection
        // without re-running the panel.
        use crate::cache::CertCacheConfig;
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Corrupt),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::replay(64))));
        let cold = authority.consult(0, &spec);
        assert!(!cold.adopted);
        let hit = authority.consult(1, &spec);
        assert!(hit.cached);
        assert!(!hit.adopted);
        assert_eq!(hit.advice, cold.advice);
        assert_eq!(authority.cert_cache().unwrap().stats().replay_failures, 0);
    }

    #[test]
    fn cached_hits_do_not_move_reputation() {
        use crate::cache::CertCacheConfig;
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[
                VerifierBehavior::Honest,
                VerifierBehavior::Honest,
                VerifierBehavior::AlwaysReject,
            ],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::trust(64))));
        let saboteur = Party::Verifier(2);
        let cold = authority.consult(0, &spec);
        assert!(cold.adopted);
        let score_after_cold = authority.reputation().score(saboteur);
        // Twenty cache hits: had these been protocol runs, the saboteur
        // would long be excluded (see the exclusion test above).
        for round in 1..=20 {
            let hit = authority.consult(round, &spec);
            assert!(hit.cached);
        }
        assert_eq!(
            authority.reputation().score(saboteur),
            score_after_cold,
            "hits never pool verdicts"
        );
        assert!(authority.reputation().is_trusted(saboteur));
    }

    #[test]
    fn silent_inventor_outcomes_are_not_cached() {
        use crate::cache::CertCacheConfig;
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut authority = RationalityAuthority::new(
            Inventor::new(0, InventorBehavior::Silent),
            &[VerifierBehavior::Honest; 3],
        );
        authority.set_cert_cache(Arc::new(CertCache::new(CertCacheConfig::trust(64))));
        for round in 0..3 {
            let outcome = authority.consult(round, &spec);
            assert!(!outcome.cached, "adviceless outcomes never hit");
            assert!(outcome.advice.is_none());
        }
        let stats = authority.cert_cache().unwrap().stats();
        assert_eq!((stats.hits, stats.misses), (0, 3));
        assert!(authority.cert_cache().unwrap().is_empty());
    }

    #[test]
    fn driver_runs_with_explicit_game_ids() {
        // The protocol layer on its own: caller-assigned ids, reused
        // endpoint across consultations.
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        let mut driver = SessionDriver::new(
            Inventor::new(0, InventorBehavior::Honest),
            &[VerifierBehavior::Honest; 3],
        );
        let agent = Party::Agent(7);
        let first = driver.run(agent, 100, &spec);
        let second = driver.run(agent, 101, &spec);
        assert!(first.adopted && second.adopted);
        assert_eq!(first.session_bytes, second.session_bytes);
        // Both consultations flowed over the same agent endpoint: the
        // request byte count doubles rather than resetting.
        assert_eq!(
            driver.bus().bytes_between(agent, Party::Inventor(0)),
            2 * Message::AdviceRequest { game_id: 100 }.encoded_len()
        );
    }
}
