//! Property-based tests for the authority infrastructure: wire-format
//! round-trips and fuzz, reputation dynamics, gossip CRDT laws, ledger
//! tampering.

use std::sync::Arc;

use proptest::prelude::*;
use ra_authority::WireBytes;
use ra_authority::{
    frame_pool_misses, sha256, sha256_wire, spec_digest, with_frame_scratch, Advice, Bus,
    CertCache, CertCacheConfig, DecayingPnCounterMap, GameSpec, GossipPlane, Inventor,
    InventorBehavior, LinkProfile, Message, Party, RationalityAuthority, ReputationDecay,
    ReputationStore, ResilienceConfig, SigningKey, SimNet, SimNetConfig, StatisticsLedger,
    Transport, VerifierBehavior, VersionVector, Wire,
};
use ra_exact::{rat, Matrix, Rational};
use ra_games::{BimatrixGame, StrategicGame};
use ra_proofs::SupportCertificate;
use ra_solvers::ParticipationParams;

/// A splitmix-style finalizer: the deterministic seed-to-payoff hash that
/// lets arbitrary game specs be generated without `prop_flat_map` (payoffs
/// are derived from one generated seed inside `prop_map`).
fn mix(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    h
}

/// A small rational derived from a hash: numerators in -10..=10,
/// denominators in 1..=6.
fn hashed_rational(h: u64) -> Rational {
    rat((h % 21) as i64 - 10, ((h >> 8) % 6 + 1) as i64)
}

/// Arbitrary specs over all four case-study families, with payoffs and
/// parameters derived deterministically from generated seeds.
fn arb_game_spec() -> impl Strategy<Value = GameSpec> {
    prop_oneof![
        (prop::collection::vec(1usize..4, 1..4), any::<u64>()).prop_map(|(counts, seed)| {
            let agents = counts.len();
            GameSpec::Strategic(StrategicGame::from_payoff_fn(counts, move |profile| {
                (0..agents)
                    .map(|agent| {
                        let mut h = seed ^ mix(agent as u64 + 1);
                        for a in 0..agents {
                            h = mix(h ^ (((a as u64) << 32) | profile.strategy_of(a) as u64));
                        }
                        hashed_rational(h)
                    })
                    .collect()
            }))
        }),
        (1usize..4, 1usize..4, any::<u64>()).prop_map(|(rows, cols, seed)| {
            let matrix = |salt: u64| {
                Matrix::from_rows(
                    (0..rows)
                        .map(|r| {
                            (0..cols)
                                .map(|c| {
                                    hashed_rational(mix(seed
                                        ^ salt
                                        ^ (((r as u64) << 16) | c as u64)))
                                })
                                .collect()
                        })
                        .collect(),
                )
            };
            GameSpec::Bimatrix(BimatrixGame::new(matrix(1), matrix(2)))
        }),
        (2u64..6, any::<u64>()).prop_map(|(n, seed)| {
            let k = 2 + seed % (n - 1);
            let v = rat((seed % 9 + 2) as i64, 1);
            let c = rat(1, (seed % 3 + 1) as i64);
            GameSpec::Participation(ParticipationParams::new(n, k, v, c).expect("valid params"))
        }),
        (
            prop::collection::vec(0i64..8, 1..5),
            1i64..5,
            0i64..5,
            1usize..6
        )
            .prop_map(|(loads, own, future, agents)| GameSpec::ParallelLinks {
                current_loads: loads.into_iter().map(|l| rat(l, 1)).collect(),
                own_load: rat(own, 1),
                expected_future_load: rat(future, 2),
                expected_future_agents: agents,
            }),
    ]
}

fn arb_party() -> impl Strategy<Value = Party> {
    (0u64..1000, 0u8..4).prop_map(|(id, kind)| match kind {
        0 => Party::Inventor(id),
        1 => Party::Agent(id),
        2 => Party::Verifier(id),
        _ => Party::Shard(id),
    })
}

/// Raw observation events for building a [`DecayingPnCounterMap`]: each is
/// one `(replica, verifier, agreed, advance)` step — a recording, the only
/// way real shards ever advance their counters, optionally followed by a
/// generation advance (the epoch clock ticking), so arbitrary maps spread
/// observations across generations exactly like live shards do.
fn arb_counter_events() -> impl Strategy<Value = Vec<(u64, u64, bool, bool)>> {
    prop::collection::vec((0u64..4, 0u64..6, any::<bool>(), any::<bool>()), 0..40)
}

fn counter_map(events: &[(u64, u64, bool, bool)]) -> DecayingPnCounterMap {
    let mut map = DecayingPnCounterMap::new();
    for &(replica, verifier, agreed, advance) in events {
        map.record(replica, Party::Verifier(verifier), agreed);
        if advance {
            map.advance_to(map.current_generation() + 1, ReputationDecay::None);
        }
    }
    map
}

fn arb_version_vector() -> impl Strategy<Value = VersionVector> {
    prop::collection::vec((0u64..8, 0u64..64), 0..6).prop_map(|entries| {
        let mut versions = VersionVector::new();
        for (replica, version) in entries {
            versions.set(replica, version);
        }
        versions
    })
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (
            any::<u64>(),
            ".{0,40}",
            prop::collection::vec(any::<u64>(), 0..6)
        )
            .prop_map(
                |(game_id, description, commitment)| Message::GameAnnouncement {
                    game_id,
                    description,
                    commitment,
                }
            ),
        any::<u64>().prop_map(|game_id| Message::AdviceRequest { game_id }),
        (
            any::<u64>(),
            prop::collection::vec(0usize..8, 1..4),
            prop::collection::vec(0usize..8, 1..4)
        )
            .prop_map(|(game_id, r, c)| {
                let mut r = r;
                let mut c = c;
                r.sort_unstable();
                r.dedup();
                c.sort_unstable();
                c.dedup();
                Message::VerdictRequest {
                    game_id,
                    advice: Arc::new(Advice::Support(SupportCertificate {
                        row_support: r,
                        col_support: c,
                    })),
                }
            }),
        (any::<u64>(), any::<bool>(), ".{0,60}").prop_map(|(game_id, accepted, detail)| {
            Message::Verdict {
                game_id,
                accepted,
                detail,
            }
        }),
        (arb_party(), any::<u64>(), any::<bool>()).prop_map(|(verifier, game_id, accepted)| {
            Message::VerdictReport {
                verifier,
                game_id,
                accepted,
            }
        }),
    ]
}

proptest! {
    /// Every message round-trips exactly, with no trailing bytes.
    #[test]
    fn messages_round_trip(msg in arb_message()) {
        let bytes = msg.to_bytes();
        let mut buf = bytes.clone();
        let decoded = Message::decode(&mut buf).expect("round trip");
        prop_assert_eq!(decoded, msg);
        prop_assert_eq!(buf.len(), 0);
    }

    /// The pooled frame scratch encodes every message byte-identically to
    /// a fresh `Vec`, and once warmed for a message size the steady state
    /// performs zero frame-buffer allocations.
    #[test]
    fn pooled_frame_encoding_matches_fresh(msg in arb_message()) {
        let mut fresh = Vec::new();
        msg.encode(&mut fresh);
        let pooled = with_frame_scratch(|buf| {
            msg.encode(buf);
            buf.clone()
        });
        prop_assert_eq!(&pooled, &fresh);
        prop_assert_eq!(msg.encoded_len(), fresh.len());
        // Steady state: the scratch now fits this message, so repeated
        // length measurements (what `Bus::send` does per frame) must not
        // touch the allocator again.
        let misses_before = frame_pool_misses();
        for _ in 0..8 {
            prop_assert_eq!(msg.encoded_len(), fresh.len());
        }
        prop_assert_eq!(
            frame_pool_misses(),
            misses_before,
            "steady-state frame measurement allocated"
        );
    }

    /// `Bus::send_batch` accounting is byte-identical to N sequential
    /// `send`s of the same frames, for arbitrary traffic mixes.
    #[test]
    fn send_batch_matches_sequential_sends(
        game_ids in prop::collection::vec(any::<u64>(), 1..20),
        targets in prop::collection::vec(0u64..3, 1..20),
    ) {
        let a = Party::Agent(0);
        let build = || {
            let bus = Bus::new();
            // Endpoints must stay alive or the channels disconnect.
            let mut endpoints = vec![bus.register(a)];
            for id in 0..3u64 {
                endpoints.push(bus.register(Party::Verifier(id)));
            }
            // One dropped link in the mix.
            bus.drop_link(a, Party::Verifier(2));
            (bus, endpoints)
        };
        let (batched, _batched_eps) = build();
        let (sequential, _sequential_eps) = build();
        let mut batch: Vec<(Party, Party, Message)> = game_ids
            .iter()
            .zip(targets.iter().cycle())
            .map(|(&g, &t)| (a, Party::Verifier(t), Message::AdviceRequest { game_id: g }))
            .collect();
        let replay = batch.clone();
        batched.send_batch(&mut batch).unwrap();
        for (from, to, msg) in replay {
            sequential.send(from, to, msg).unwrap();
        }
        prop_assert_eq!(batched.delivery_log(), sequential.delivery_log());
        prop_assert_eq!(batched.total_bytes(), sequential.total_bytes());
        prop_assert_eq!(batched.delivered_bytes(), sequential.delivered_bytes());
        for t in 0..3u64 {
            prop_assert_eq!(
                batched.bytes_between(a, Party::Verifier(t)),
                sequential.bytes_between(a, Party::Verifier(t))
            );
        }
    }

    /// Decoding arbitrary bytes never panics — it errors or produces a
    /// value that re-encodes to a prefix-consistent message.
    #[test]
    fn decoder_is_total(raw in prop::collection::vec(any::<u8>(), 0..200)) {
        let mut buf = WireBytes::from(raw);
        let _ = Message::decode(&mut buf); // must not panic
    }

    /// Rational wire encoding round-trips arbitrary values.
    #[test]
    fn rationals_round_trip(n in any::<i64>(), d in 1i64..=i64::MAX) {
        let r = Rational::new(n, d);
        let bytes = r.to_bytes();
        let mut buf = bytes;
        prop_assert_eq!(Rational::decode(&mut buf).unwrap(), r);
    }

    /// Reputation: agreeing with the majority never lowers a score;
    /// disagreeing never raises it; scores move by exactly one per pool.
    #[test]
    fn reputation_update_rule(votes in prop::collection::vec(any::<bool>(), 1..9)) {
        let store = ReputationStore::new();
        let verdicts: Vec<(Party, bool)> = votes
            .iter()
            .enumerate()
            .map(|(i, &v)| (Party::Verifier(i as u64), v))
            .collect();
        let before: Vec<i64> =
            verdicts.iter().map(|&(p, _)| store.score(p)).collect();
        let outcome = store.pool_verdicts(&verdicts);
        let accepts = votes.iter().filter(|&&v| v).count();
        prop_assert_eq!(outcome.accepted, accepts > votes.len() - accepts);
        for (i, &(p, vote)) in verdicts.iter().enumerate() {
            let delta = store.score(p) - before[i];
            if vote == outcome.accepted {
                prop_assert_eq!(delta, 1);
            } else {
                prop_assert_eq!(delta, -1);
            }
        }
    }

    /// Gossip CRDT: merge is commutative — either merge order converges
    /// on the same state.
    #[test]
    fn pn_counter_merge_commutes(
        a in arb_counter_events(),
        b in arb_counter_events(),
    ) {
        let (a, b) = (counter_map(&a), counter_map(&b));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    /// Gossip CRDT: merge is associative — grouping of merges is
    /// irrelevant, so gossip rounds can batch deltas arbitrarily.
    #[test]
    fn pn_counter_merge_is_associative(
        a in arb_counter_events(),
        b in arb_counter_events(),
        c in arb_counter_events(),
    ) {
        let (a, b, c) = (counter_map(&a), counter_map(&b), counter_map(&c));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc);
    }

    /// Gossip CRDT: merge is idempotent — re-delivering the same state
    /// (a re-sync, a duplicated gossip message) changes nothing.
    #[test]
    fn pn_counter_merge_is_idempotent(
        a in arb_counter_events(),
        b in arb_counter_events(),
    ) {
        let (a, b) = (counter_map(&a), counter_map(&b));
        let mut once = a.clone();
        once.merge(&b);
        let mut twice = once.clone();
        twice.merge(&b);
        prop_assert_eq!(&twice, &once);
        let mut self_merge = a.clone();
        self_merge.merge(&a);
        prop_assert_eq!(self_merge, a);
    }

    /// Decay is a pure read-side weighting over the merged lattice state:
    /// merging in either order yields identical decayed reads (merge laws
    /// above give identical *states*; this pins the read path), and aging
    /// any map by `retention` generations with no new observations decays
    /// every verifier to exactly zero — ancient history is forgiven — with
    /// the aged-out generations pruned from the map.
    #[test]
    fn decay_reads_are_merge_stable_and_eventually_forgive(
        a in arb_counter_events(),
        b in arb_counter_events(),
        retention in 1u32..6,
    ) {
        let (a, b) = (counter_map(&a), counter_map(&b));
        let decay = ReputationDecay::HalfLife { retention };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        for verifier in ab.verifiers() {
            prop_assert_eq!(
                ab.decayed_value(verifier, decay),
                ba.decayed_value(verifier, decay),
                "merge order changed a decayed read for {}", verifier
            );
        }
        let mut aged = ab.clone();
        aged.advance_to(aged.current_generation() + u64::from(retention), decay);
        for verifier in ab.verifiers() {
            prop_assert_eq!(
                aged.decayed_value(verifier, decay),
                0,
                "verifier {} not forgiven after {} generations", verifier, retention
            );
        }
        prop_assert!(aged.is_empty(), "aged-out generations are pruned");
    }

    /// The gossip wire payload round-trips arbitrary PN-counter delta
    /// maps exactly — generation cursor, slots, tallies and version
    /// vector — with no trailing bytes, both bare and framed as a
    /// `Message::Gossip`.
    #[test]
    fn gossip_delta_maps_round_trip(
        events in arb_counter_events(),
        versions in arb_version_vector(),
    ) {
        let delta = counter_map(&events);
        let bytes = delta.to_bytes();
        let mut buf = bytes.clone();
        let decoded = DecayingPnCounterMap::decode(&mut buf).expect("delta decodes");
        prop_assert_eq!(&decoded, &delta);
        prop_assert_eq!(buf.len(), 0);
        prop_assert_eq!(decoded.current_generation(), delta.current_generation());
        let msg = Message::Gossip { delta, versions };
        let framed = msg.to_bytes();
        let mut buf = framed.clone();
        prop_assert_eq!(Message::decode(&mut buf).expect("frame decodes"), msg);
        prop_assert_eq!(buf.len(), 0);
    }

    /// Truncating a gossip frame anywhere yields a clean decode error,
    /// never a panic or a silent success.
    #[test]
    fn truncated_gossip_frames_rejected(
        events in arb_counter_events(),
        versions in arb_version_vector(),
        cut_fraction in 0.0f64..1.0,
    ) {
        let delta = counter_map(&events);
        let msg = Message::Gossip { delta, versions };
        let bytes = msg.to_bytes();
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        if cut < bytes.len() {
            let mut truncated = bytes.slice(0..cut);
            prop_assert!(Message::decode(&mut truncated).is_err());
        }
    }

    /// The versioned-pull protocol is *transparent*: an arbitrary
    /// interleaving of per-replica recordings, pushes and watermarked
    /// pulls leaves every replica in exactly the state a full-snapshot
    /// merge would have produced — the incremental deltas lose nothing
    /// and invent nothing.
    ///
    /// Script actions per step: record an observation on a replica, then
    /// 0 = push that replica, 1 = pull it, 2 = barrier-sync all replicas,
    /// 3 = do nothing.
    #[test]
    fn watermarked_pulls_match_full_snapshot_merges(
        script in prop::collection::vec(
            (0usize..3, 0u64..5, any::<bool>(), 0u8..4),
            1..60,
        ),
    ) {
        const REPLICAS: usize = 3;
        let plane = GossipPlane::over_bus();
        let mut locals = vec![DecayingPnCounterMap::new(); REPLICAS];
        let mut seens = vec![VersionVector::new(); REPLICAS];
        // Reference: the plain join of everything ever published, merged
        // wholesale into a snapshot per replica.
        let mut reference_hub = DecayingPnCounterMap::new();
        let mut references = vec![DecayingPnCounterMap::new(); REPLICAS];
        let push =
            |r: usize,
             locals: &[DecayingPnCounterMap],
             reference_hub: &mut DecayingPnCounterMap| {
                plane.publish_from(r as u64, locals[r].replica_slice(r as u64));
                reference_hub.merge(&locals[r].replica_slice(r as u64));
            };
        let pull = |r: usize,
                    locals: &mut [DecayingPnCounterMap],
                    seens: &mut [VersionVector],
                    references: &mut [DecayingPnCounterMap],
                    reference_hub: &DecayingPnCounterMap| {
            plane.pull_into(r as u64, &mut locals[r], &mut seens[r]);
            references[r].merge(reference_hub);
        };
        for &(replica, verifier, agreed, action) in &script {
            locals[replica].record(replica as u64, Party::Verifier(verifier), agreed);
            references[replica].record(replica as u64, Party::Verifier(verifier), agreed);
            match action {
                0 => push(replica, &locals, &mut reference_hub),
                1 => pull(replica, &mut locals, &mut seens, &mut references, &reference_hub),
                2 => {
                    for r in 0..REPLICAS {
                        push(r, &locals, &mut reference_hub);
                    }
                    for r in 0..REPLICAS {
                        pull(r, &mut locals, &mut seens, &mut references, &reference_hub);
                    }
                }
                _ => {}
            }
        }
        // Final barrier, then every replica must agree with its
        // full-snapshot twin on every verifier's exact slots.
        for r in 0..REPLICAS {
            push(r, &locals, &mut reference_hub);
        }
        for r in 0..REPLICAS {
            pull(r, &mut locals, &mut seens, &mut references, &reference_hub);
        }
        for r in 0..REPLICAS {
            prop_assert_eq!(
                &locals[r],
                &references[r],
                "replica {} diverged from the full-snapshot merge",
                r
            );
        }
    }

    /// Ledger: any single-record value tamper is detected by audit.
    #[test]
    fn ledger_tamper_detected(
        rounds in 2usize..8,
        tamper_at in 0usize..8,
        new_value in -1000i64..1000,
    ) {
        let key = SigningKey::derive("inventor");
        let mut ledger = StatisticsLedger::new();
        for r in 0..rounds {
            ledger.publish(&key, (r + 1) as u64, vec![Rational::from(r as i64)]);
        }
        prop_assert!(ledger.audit(&key).is_ok());
        let idx = tamper_at % rounds;
        let mut tampered = ledger.clone();
        // Direct field surgery is not possible from outside (fields are
        // public in the record struct); emulate an attacker rewriting one
        // published value.
        let mut records = tampered.records().to_vec();
        if records[idx].values[0] == Rational::from(new_value) {
            return Ok(()); // no-op tamper
        }
        records[idx].values[0] = Rational::from(new_value);
        // Rebuild a ledger bytewise: audit must fail at or after idx.
        tampered = StatisticsLedger::new();
        let _ = tampered;
        let rebuilt = LedgerProbe { records };
        prop_assert!(rebuilt.audit_fails(&key));
    }

    /// The spec digest is content-addressed and canonical: pooled and
    /// fresh buffers encode identical bytes, the digest is exactly the
    /// SHA-256 of those bytes, and a decode/re-digest round trip is a
    /// fixed point.
    #[test]
    fn spec_digest_is_canonical_and_stable(spec in arb_game_spec()) {
        let mut fresh = Vec::new();
        spec.encode(&mut fresh);
        let pooled = with_frame_scratch(|buf| {
            spec.encode(buf);
            buf.clone()
        });
        prop_assert_eq!(&pooled, &fresh, "pooled and fresh encodings differ");
        prop_assert_eq!(spec_digest(&spec), sha256(&fresh));
        prop_assert_eq!(sha256_wire(&spec), spec_digest(&spec));
        let mut buf = spec.to_bytes();
        let decoded = GameSpec::decode(&mut buf).expect("canonical bytes decode");
        prop_assert_eq!(buf.len(), 0, "trailing bytes after decode");
        prop_assert_eq!(spec_digest(&decoded), spec_digest(&spec));
        prop_assert_eq!(decoded, spec);
    }

    /// A Replay-mode cache hit is observably identical to a cold
    /// consultation: advice, certificate adoption, majority and advice
    /// bytes all match what a cacheless twin authority produces for the
    /// same consultation stream, for arbitrary specs of every family.
    #[test]
    fn replay_cache_hits_equal_cold_consultations(
        spec in arb_game_spec(),
        agents in 1u64..5,
    ) {
        let panel = [VerifierBehavior::Honest; 3];
        let mut cold =
            RationalityAuthority::new(Inventor::new(0, InventorBehavior::Honest), &panel);
        let cache = Arc::new(CertCache::new(CertCacheConfig::replay(64)));
        let mut warm =
            RationalityAuthority::new(Inventor::new(0, InventorBehavior::Honest), &panel);
        warm.set_cert_cache(Arc::clone(&cache));
        // Prime the cache, then every later consult is a replay-mode hit
        // (unless the inventor stayed silent — no advice, nothing cached).
        let primed = warm.consult(0, &spec);
        let reference = cold.consult(0, &spec);
        prop_assert_eq!(primed.adopted, reference.adopted);
        for agent in 1..=agents {
            let hit = warm.consult(agent, &spec);
            let fresh = cold.consult(agent, &spec);
            if primed.advice.is_some() {
                prop_assert!(hit.cached, "second consult of a cached spec must hit");
                prop_assert_eq!(hit.session_bytes, 0, "hits ship zero bytes");
            } else {
                prop_assert!(!hit.cached, "silent outcomes are never cached");
            }
            prop_assert_eq!(&hit.advice, &fresh.advice);
            prop_assert_eq!(hit.adopted, fresh.adopted);
            prop_assert_eq!(&hit.majority, &fresh.majority);
            prop_assert_eq!(hit.advice_bytes, fresh.advice_bytes);
        }
        prop_assert_eq!(
            cache.stats().replay_failures, 0,
            "honest kernel replays always agree with their stored verdict"
        );
    }

    /// Bus byte accounting equals the sum of encoded message sizes.
    #[test]
    fn bus_accounting_exact(game_ids in prop::collection::vec(any::<u64>(), 1..20)) {
        let bus = Bus::new();
        let a = Party::Agent(0);
        let b = Party::Inventor(0);
        let _ep_a = bus.register(a);
        let _ep_b = bus.register(b);
        let mut expected = 0usize;
        for &g in &game_ids {
            let msg = Message::AdviceRequest { game_id: g };
            expected += msg.encoded_len();
            bus.send(a, b, msg).unwrap();
        }
        prop_assert_eq!(bus.total_bytes(), expected);
        prop_assert_eq!(bus.message_count(), game_ids.len());
    }
}

/// Minimal attacker-view of a ledger for the tamper test (drives the same
/// audit logic through the public API).
struct LedgerProbe {
    records: Vec<ra_authority::StatisticsRecord>,
}

impl LedgerProbe {
    fn audit_fails(&self, key: &SigningKey) -> bool {
        // Re-run the audit rules manually via the public record API.
        let mut prev_hash = [0u8; 32];
        for record in &self.records {
            if record.prev_hash != prev_hash {
                return true;
            }
            // Reconstruct the signed message exactly as publish() did.
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&record.round.to_be_bytes());
            for v in &record.values {
                bytes.extend_from_slice(v.to_string().as_bytes());
                bytes.push(b'|');
            }
            bytes.extend_from_slice(&record.prev_hash);
            if !key.verify(&bytes, &record.signature) {
                return true;
            }
            prev_hash = record.hash();
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Striped-vs-serial ledger equivalence (the PR 8 bus decomposition).
// ---------------------------------------------------------------------------

/// One bus operation in the model-based equivalence test. Party indices
/// are drawn from a small universe (see [`universe_party`]) so traffic
/// mixes routinely hit unknown parties, dropped links, replaced endpoints
/// and disconnections.
#[derive(Clone, Debug)]
enum BusOp {
    /// Register (or re-register) a party.
    Register(u64),
    /// Remove a party's registration via `Bus::disconnect`.
    Disconnect(u64),
    /// Drop a party's `Endpoint` handle while leaving it registered, so
    /// later sends fail with `Disconnected` (accounted, undelivered).
    DropEndpoint(u64),
    /// Inject a fault-drop rule `from → to`.
    DropLink(u64, u64),
    /// Clear all drop rules.
    Heal,
    /// One `Bus::send`.
    Send(u64, u64, u64),
    /// One `Bus::send_batch` of `(from, to, game_id)` frames.
    SendBatch(Vec<(u64, u64, u64)>),
}

/// Maps a universe index to a concrete party, mixing variants so the
/// stripe hash sees different tags.
fn universe_party(idx: u64) -> Party {
    match idx % 6 {
        0 => Party::Agent(0),
        1 => Party::Agent(1),
        2 => Party::Agent(2),
        3 => Party::Verifier(0),
        4 => Party::Verifier(1),
        _ => Party::Inventor(0),
    }
}

fn arb_bus_op() -> impl Strategy<Value = BusOp> {
    prop_oneof![
        (0u64..6).prop_map(BusOp::Register),
        (0u64..6).prop_map(BusOp::Disconnect),
        (0u64..6).prop_map(BusOp::DropEndpoint),
        ((0u64..6), (0u64..6)).prop_map(|(f, t)| BusOp::DropLink(f, t)),
        Just(BusOp::Heal),
        ((0u64..6), (0u64..6), any::<u64>()).prop_map(|(f, t, g)| BusOp::Send(f, t, g)),
        prop::collection::vec(((0u64..6), (0u64..6), any::<u64>()), 0..6)
            .prop_map(BusOp::SendBatch),
    ]
}

/// The pre-stripe serial ledger, replayed as a reference model: one
/// record vector, running totals and a pair map updated exactly as the
/// old single-`Mutex<Ledger>` bus did — unknown parties short-circuit
/// before accounting, fault-dropped and dead-endpoint sends are
/// accounted as undelivered.
#[derive(Default)]
struct SerialLedgerModel {
    records: Vec<ra_authority::DeliveryRecord>,
    total_bytes: usize,
    delivered_bytes: usize,
    pair_bytes: std::collections::HashMap<(Party, Party), usize>,
    registered: std::collections::HashSet<Party>,
    dead_endpoints: std::collections::HashSet<Party>,
    drop_rules: std::collections::HashSet<(Party, Party)>,
}

impl SerialLedgerModel {
    /// Replays one send; returns what the real bus must return for it.
    fn send(&mut self, from: Party, to: Party, bytes: usize) -> Result<(), ra_authority::BusError> {
        let dropped = self.drop_rules.contains(&(from, to));
        let result = if dropped {
            Ok(())
        } else if !self.registered.contains(&to) {
            // Unknown party: short-circuit before any accounting.
            return Err(ra_authority::BusError::UnknownParty(to));
        } else if self.dead_endpoints.contains(&to) {
            Err(ra_authority::BusError::Disconnected(to))
        } else {
            Ok(())
        };
        let delivered = !dropped && result.is_ok();
        self.total_bytes += bytes;
        if delivered {
            self.delivered_bytes += bytes;
        }
        *self.pair_bytes.entry((from, to)).or_insert(0) += bytes;
        self.records.push(ra_authority::DeliveryRecord {
            from,
            to,
            bytes,
            delivered,
        });
        result
    }
}

proptest! {
    /// The tentpole equivalence: for arbitrary operation sequences —
    /// registration churn, disconnects, dead endpoints, drop rules and
    /// mixed `send`/`send_batch` traffic — the striped ledger's accessors
    /// are field-equal to the serial single-lock ledger replayed as a
    /// model: same delivery log, same totals, same per-pair bytes, same
    /// errors.
    #[test]
    fn striped_ledger_matches_serial_model(
        ops in prop::collection::vec(arb_bus_op(), 1..40),
    ) {
        let bus = Bus::new();
        let mut model = SerialLedgerModel::default();
        // Endpoints held here stay connected; removing one kills its
        // channel while the registration stays (the Disconnected case).
        let mut live_endpoints: std::collections::HashMap<u64, ra_authority::Endpoint> =
            std::collections::HashMap::new();
        for op in ops {
            match op {
                BusOp::Register(idx) => {
                    let p = universe_party(idx);
                    live_endpoints.insert(idx, bus.register(p));
                    model.registered.insert(p);
                    model.dead_endpoints.remove(&p);
                }
                BusOp::Disconnect(idx) => {
                    let p = universe_party(idx);
                    bus.disconnect(p);
                    live_endpoints.remove(&idx);
                    model.registered.remove(&p);
                    model.dead_endpoints.remove(&p);
                }
                BusOp::DropEndpoint(idx) => {
                    let p = universe_party(idx);
                    live_endpoints.remove(&idx);
                    if model.registered.contains(&p) {
                        model.dead_endpoints.insert(p);
                    }
                }
                BusOp::DropLink(f, t) => {
                    let (f, t) = (universe_party(f), universe_party(t));
                    bus.drop_link(f, t);
                    model.drop_rules.insert((f, t));
                }
                BusOp::Heal => {
                    bus.heal();
                    model.drop_rules.clear();
                }
                BusOp::Send(f, t, game_id) => {
                    let (f, t) = (universe_party(f), universe_party(t));
                    let msg = Message::AdviceRequest { game_id };
                    let bytes = msg.encoded_len();
                    prop_assert_eq!(bus.send(f, t, msg), model.send(f, t, bytes));
                }
                BusOp::SendBatch(frames) => {
                    let mut batch: Vec<(Party, Party, Message)> = frames
                        .iter()
                        .map(|&(f, t, g)| {
                            (
                                universe_party(f),
                                universe_party(t),
                                Message::AdviceRequest { game_id: g },
                            )
                        })
                        .collect();
                    let mut first_error = Ok(());
                    for (f, t, msg) in &batch {
                        let result = model.send(*f, *t, msg.encoded_len());
                        if first_error.is_ok() {
                            first_error = result;
                        }
                    }
                    prop_assert_eq!(bus.send_batch(&mut batch), first_error);
                }
            }
        }
        // Field equality of every accounting view.
        prop_assert_eq!(bus.delivery_log(), model.records);
        prop_assert_eq!(bus.total_bytes(), model.total_bytes);
        prop_assert_eq!(bus.delivered_bytes(), model.delivered_bytes);
        prop_assert_eq!(bus.message_count(), bus.delivery_log().len());
        for f in 0..6u64 {
            for t in 0..6u64 {
                let pair = (universe_party(f), universe_party(t));
                prop_assert_eq!(
                    bus.bytes_between(pair.0, pair.1),
                    model.pair_bytes.get(&pair).copied().unwrap_or(0),
                    "pair {} -> {}", pair.0, pair.1
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bus vs lossless SimNet equivalence (the PR 9 transport boundary).
// ---------------------------------------------------------------------------

/// Replays an operation sequence over any [`Transport`] and returns every
/// observable: per-op results, the full delivery log, the counters, the
/// per-pair matrix, and what each still-live endpoint actually received.
#[allow(clippy::type_complexity)]
fn replay_ops(
    transport: &dyn Transport,
    ops: &[BusOp],
) -> (
    Vec<Result<(), ra_authority::BusError>>,
    Vec<ra_authority::DeliveryRecord>,
    usize,
    usize,
    Vec<usize>,
    Vec<(u64, Vec<(Party, Message)>)>,
) {
    let mut results = Vec::new();
    let mut live_endpoints: std::collections::HashMap<u64, ra_authority::Endpoint> =
        std::collections::HashMap::new();
    for op in ops {
        match op {
            BusOp::Register(idx) => {
                live_endpoints.insert(*idx, transport.register(universe_party(*idx)));
            }
            BusOp::Disconnect(idx) => {
                transport.disconnect(universe_party(*idx));
                live_endpoints.remove(idx);
            }
            BusOp::DropEndpoint(idx) => {
                live_endpoints.remove(idx);
            }
            BusOp::DropLink(f, t) => {
                transport.drop_link(universe_party(*f), universe_party(*t));
            }
            BusOp::Heal => transport.heal(),
            BusOp::Send(f, t, game_id) => {
                results.push(transport.send(
                    universe_party(*f),
                    universe_party(*t),
                    Message::AdviceRequest { game_id: *game_id },
                ));
            }
            BusOp::SendBatch(frames) => {
                let mut batch: Vec<(Party, Party, Message)> = frames
                    .iter()
                    .map(|&(f, t, g)| {
                        (
                            universe_party(f),
                            universe_party(t),
                            Message::AdviceRequest { game_id: g },
                        )
                    })
                    .collect();
                results.push(transport.send_batch(&mut batch));
            }
        }
    }
    transport.settle();
    let pair_matrix: Vec<usize> = (0..6u64)
        .flat_map(|f| (0..6u64).map(move |t| (f, t)))
        .map(|(f, t)| transport.bytes_between(universe_party(f), universe_party(t)))
        .collect();
    let mut inboxes: Vec<(u64, Vec<(Party, Message)>)> = live_endpoints
        .iter()
        .map(|(&idx, ep)| (idx, ep.drain()))
        .collect();
    inboxes.sort_by_key(|(idx, _)| *idx);
    (
        results,
        transport.delivery_log(),
        transport.total_bytes(),
        transport.delivered_bytes(),
        pair_matrix,
        inboxes,
    )
}

proptest! {
    /// The PR 9 equivalence: over arbitrary traffic mixes — registration
    /// churn, dead endpoints, drop rules, mixed send/send_batch — a
    /// lossless zero-latency [`SimNet`] is byte-identical to the [`Bus`]
    /// at the [`Transport`] boundary: same per-op results, same delivery
    /// log (field-equal records in the same order), same totals, same
    /// per-pair bytes, and the same frames in every inbox.
    #[test]
    fn lossless_simnet_is_byte_identical_to_bus(
        ops in prop::collection::vec(arb_bus_op(), 1..40),
        seed in any::<u64>(),
    ) {
        let bus = Bus::new();
        let sim = SimNet::lossless(seed);
        let over_bus = replay_ops(&bus, &ops);
        let over_sim = replay_ops(&sim, &ops);
        prop_assert_eq!(&over_bus.0, &over_sim.0, "per-op results diverged");
        prop_assert_eq!(&over_bus.1, &over_sim.1, "delivery logs diverged");
        prop_assert_eq!(over_bus.2, over_sim.2, "total_bytes diverged");
        prop_assert_eq!(over_bus.3, over_sim.3, "delivered_bytes diverged");
        prop_assert_eq!(&over_bus.4, &over_sim.4, "per-pair bytes diverged");
        prop_assert_eq!(&over_bus.5, &over_sim.5, "delivered inboxes diverged");
    }
}

/// A resilient authority over a seeded [`SimNet`] with the given link
/// profile, ready for the retransmit-accounting properties below.
fn resilient_over_simnet(seed: u64, link: LinkProfile) -> RationalityAuthority {
    let net = SimNet::new(SimNetConfig {
        seed,
        default_link: link,
        ..SimNetConfig::default()
    });
    let mut authority = RationalityAuthority::with_transport(
        Inventor::new(0, InventorBehavior::Honest),
        &[VerifierBehavior::Honest; 3],
        Arc::new(ReputationStore::new()),
        Arc::new(net),
    );
    authority.set_resilience(Some(ResilienceConfig::default()));
    authority
}

proptest! {
    /// Lemma 1's resilient ledger split: over arbitrary loss seeds,
    /// drop/duplicate probabilities and latency windows, every wire byte
    /// is classified exactly once — `total == goodput + retransmit` —
    /// whether the sessions completed, degraded or starved.
    #[test]
    fn retransmit_accounting_is_exhaustive_and_exclusive(
        seed in any::<u64>(),
        loss in 0.0f64..0.5,
        dup in 0.0f64..0.3,
        latency in 0u64..3,
        rounds in 1usize..6,
    ) {
        let mut authority = resilient_over_simnet(seed, LinkProfile {
            latency_min: 0,
            latency_max: latency,
            drop_prob: loss,
            duplicate_probability: dup,
        });
        let spec = GameSpec::Strategic(ra_games::named::prisoners_dilemma().to_strategic());
        for round in 0..rounds as u64 {
            // Budget exhaustion is a legal outcome at high loss; the
            // ledger invariant must hold either way.
            let _ = authority.try_consult(round, &spec);
        }
        let bus = authority.bus();
        prop_assert!(bus.total_bytes() > 0, "sessions moved frames");
        prop_assert_eq!(
            bus.total_bytes(),
            bus.goodput_bytes() + bus.retransmit_bytes(),
            "every byte classified exactly once"
        );
        prop_assert!(bus.retransmit_bytes() <= bus.total_bytes());
    }

    /// A zero-loss run never bills retransmit bytes: the retry machinery
    /// is pure insurance, spent only when the network actually misbehaves.
    #[test]
    fn zero_loss_runs_report_zero_retransmit_bytes(
        seed in any::<u64>(),
        dup in 0.0f64..=1.0,
        rounds in 1usize..6,
    ) {
        let mut authority = resilient_over_simnet(seed, LinkProfile::duplicating(dup));
        let spec = GameSpec::Strategic(ra_games::named::prisoners_dilemma().to_strategic());
        for round in 0..rounds as u64 {
            let outcome = authority
                .try_consult(round, &spec)
                .expect("no loss, no starvation");
            prop_assert_eq!(outcome.attempts, 0, "nothing to retry");
        }
        let bus = authority.bus();
        prop_assert_eq!(bus.retransmit_bytes(), 0);
        prop_assert_eq!(bus.goodput_bytes(), bus.total_bytes());
    }
}
