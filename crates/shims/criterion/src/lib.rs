//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This build environment has no network access to a crate registry, so the
//! workspace vendors the subset of the criterion API its benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, `criterion_group!` /
//! `criterion_main!` and [`black_box`]. Instead of criterion's statistical
//! machinery it runs each benchmark for a fixed number of timed batches and
//! reports the best per-iteration time — adequate for eyeballing the paper's
//! verify-vs-compute gaps, not for regression-grade statistics.
//!
//! # Machine-readable output
//!
//! When the `CRITERION_JSON` environment variable names a file, every
//! benchmark additionally appends one line of JSON to it (creating it on
//! first use), so `cargo bench` runs can be archived as an artifact:
//!
//! ```json
//! {"id":"group/bench/param","best_ns":1234,"samples":10}
//! ```
//!
//! `id` is the full benchmark path, `best_ns` the best observed
//! per-iteration time in integer nanoseconds (`null` if the benchmark
//! made no measurement), `samples` the number of timed batches. The
//! schema is stable: fields are only ever added, never renamed. CI points
//! `CRITERION_JSON` at `results/criterion.jsonl` and uploads it with the
//! experiment tables (see `docs/BENCHMARKS.md`).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// An opaque benchmark identifier: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] does the timing.
pub struct Bencher {
    samples: usize,
    best: Option<Duration>,
}

impl Bencher {
    /// Times `routine`, keeping the best observed per-iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration, then `samples` timed batches.
        black_box(routine());
        let mut iters_per_batch = 1u32;
        // Grow the batch until one batch takes ≥ ~100µs, so Instant
        // resolution doesn't dominate fast routines.
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_micros(100) || iters_per_batch >= 1 << 20 {
                break;
            }
            iters_per_batch *= 2;
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(routine());
            }
            let per_iter = start.elapsed() / iters_per_batch;
            self.best = Some(match self.best {
                Some(b) if b <= per_iter => b,
                _ => per_iter,
            });
        }
    }
}

fn run_one(full_id: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples,
        best: None,
    };
    f(&mut bencher);
    match bencher.best {
        Some(best) => println!("{full_id:<60} best {best:>12.3?}/iter"),
        None => println!("{full_id:<60} (no measurement)"),
    }
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        append_json_line(&path, full_id, samples, bencher.best);
    }
}

/// Appends the stable one-line-JSON record for one finished benchmark (see
/// the crate docs for the schema). I/O errors are reported but not fatal —
/// a benchmark run should never die over its log file.
fn append_json_line(path: &str, full_id: &str, samples: usize, best: Option<Duration>) {
    let escaped: String = full_id
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect();
    let best_ns = best.map_or_else(|| String::from("null"), |b| b.as_nanos().to_string());
    let line = format!("{{\"id\":\"{escaped}\",\"best_ns\":{best_ns},\"samples\":{samples}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut file| std::io::Write::write_all(&mut file, line.as_bytes()));
    if let Err(err) = written {
        eprintln!("criterion shim: cannot append to CRITERION_JSON={path}: {err}");
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed batches per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        run_one(id, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed batches per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs a benchmark identified by `id` with an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id.id), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, f);
        self
    }

    /// Ends the group (a no-op in the shim; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, optionally with a config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fib(n: u64) -> u64 {
        (1..n)
            .fold((0u64, 1u64), |(a, b), _| (b, a.wrapping_add(b)))
            .1
    }

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("fib/10", |b| b.iter(|| fib(black_box(10))));
        let mut group = c.benchmark_group("grouped");
        group.sample_size(3);
        for n in [5u64, 8] {
            group.bench_with_input(BenchmarkId::new("fib", n), &n, |b, &n| {
                b.iter(|| fib(black_box(n)))
            });
        }
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(2);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn json_lines_follow_the_stable_schema() {
        let path = std::env::temp_dir().join(format!(
            "criterion-shim-json-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id(),
        ));
        let path_str = path.to_str().expect("utf-8 temp path");
        let _ = std::fs::remove_file(&path);
        append_json_line(path_str, "fib/10", 3, Some(Duration::from_nanos(1234)));
        append_json_line(path_str, "quoted \"id\"\\slash", 1, None);
        let contents = std::fs::read_to_string(&path).expect("json file written");
        let lines: Vec<&str> = contents.lines().collect();
        assert_eq!(
            lines[0],
            "{\"id\":\"fib/10\",\"best_ns\":1234,\"samples\":3}"
        );
        assert_eq!(
            lines[1],
            "{\"id\":\"quoted \\\"id\\\"\\\\slash\",\"best_ns\":null,\"samples\":1}"
        );
        // Appending is cumulative: a second bench run extends the log.
        append_json_line(path_str, "fib/11", 2, Some(Duration::from_micros(1)));
        let contents = std::fs::read_to_string(&path).expect("json file re-read");
        assert_eq!(contents.lines().count(), 3);
        assert!(contents.ends_with("{\"id\":\"fib/11\",\"best_ns\":1000,\"samples\":2}\n"));
        let _ = std::fs::remove_file(&path);
    }
}
