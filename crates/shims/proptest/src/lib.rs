//! Offline shim for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! This build environment has no network access to a crate registry, so the
//! workspace vendors a minimal, API-compatible subset of `proptest`:
//!
//! * [`strategy::Strategy`] with `prop_map` and `boxed`;
//! * strategies for integer/bool `any`, integer ranges, tuples, `&str`
//!   patterns of the form `.{a,b}`, [`collection::vec`], and
//!   [`strategy::Union`] (backing [`prop_oneof!`]);
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]`, plus
//!   [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`].
//!
//! Differences from upstream, deliberately accepted for offline builds:
//! **no shrinking** (failures report the raw failing inputs), and value
//! streams are produced by the vendored xoshiro-based [`rand`] shim seeded
//! deterministically from the test function name, so runs are reproducible
//! but differ from upstream proptest's. Case count defaults to 64 and can
//! be overridden with `PROPTEST_CASES` or `ProptestConfig::with_cases`.

#![forbid(unsafe_code)]

/// Runner configuration and error plumbing used by the generated tests.
pub mod test_runner {
    use std::hash::{Hash, Hasher};

    /// The RNG driving value generation.
    pub type TestRng = rand::rngs::StdRng;

    /// Builds the deterministic RNG for one property, seeded from its name.
    pub fn rng_for(test_name: &str) -> TestRng {
        use rand::SeedableRng;
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        test_name.hash(&mut hasher);
        TestRng::seed_from_u64(hasher.finish())
    }

    /// Subset of upstream `ProptestConfig`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            Config { cases }
        }
    }

    /// Rejection budget for a run: generous enough for assumptions that
    /// discard most inputs, bounded so an unsatisfiable `prop_assume!`
    /// fails instead of looping (mirrors upstream's max-global-rejects).
    pub fn max_rejects(config: &Config) -> u32 {
        config.cases.saturating_mul(16).max(1024)
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case was vacuous (a `prop_assume!` failed); it is skipped.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// Constructs a rejection.
        pub fn reject(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike upstream proptest there is no shrinking: a strategy is just a
    /// deterministic-RNG-to-value function.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { strategy: self, f }
        }

        /// Type-erases the strategy (used by the `prop_oneof!` macro).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        strategy: S,
        f: F,
    }

    impl<S, F, T> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.strategy.generate(rng))
        }
    }

    /// Always produces a clone of one value (upstream `Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased alternatives (behind
    /// the `prop_oneof!` macro).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics on an empty option list.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let ix = rng.random_range(0..self.options.len());
            self.options[ix].generate(rng)
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.start..=self.end)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// `&str` strategies support the one regex shape the workspace uses,
    /// `.{lo,hi}` (an arbitrary printable-ASCII string of bounded length);
    /// any other pattern is generated as the literal string itself.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            if let Some((lo, hi)) = parse_dot_repeat(self) {
                let len = rng.random_range(lo..=hi);
                (0..len)
                    .map(|_| char::from(rng.random_range(0x20u8..0x7f)))
                    .collect()
            } else {
                (*self).to_string()
            }
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (lo, hi) = body.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.random_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.random_bool(0.5)
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<A> {
        _marker: std::marker::PhantomData<fn() -> A>,
    }

    impl<A: Arbitrary> Strategy for AnyStrategy<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Bounds for a generated collection's length.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with element strategy `element` and length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the tests glob-import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Mirror of upstream's `prelude::prop` module shortcut.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "prop_assert_eq failed: {:?} != {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "prop_assert_ne failed: both sides are {:?}",
            left
        );
    }};
}

/// Skips the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::rng_for(concat!(module_path!(), "::", stringify!($name)));
            // Like upstream: `prop_assume!` rejections do not consume the
            // case budget, and persistent rejection is an error rather than
            // a vacuous pass.
            let max_rejects = $crate::test_runner::max_rejects(&config);
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            while passed < config.cases {
                let mut inputs = String::new();
                $(
                    let value = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    inputs.push_str(&format!("{} = {:?}; ", stringify!($arg), &value));
                    let $arg = value;
                )+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(cond)) => {
                        rejected += 1;
                        if rejected > max_rejects {
                            panic!(
                                "proptest '{}' rejected {rejected} cases (passed {passed}/{}); \
                                 prop_assume!({cond}) holds too rarely for its strategies",
                                stringify!($name),
                                config.cases,
                            );
                        }
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed at case {passed}: {msg}\n  inputs: {inputs}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(v in 0u64..100, w in -5i64..=5) {
            prop_assert!(v < 100);
            prop_assert!((-5..=5).contains(&w));
        }

        #[test]
        fn tuples_and_map(pair in (0u8..10, 0u8..10).prop_map(|(a, b)| (a, b))) {
            prop_assert!(pair.0 < 10 && pair.1 < 10);
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn exact_vec_length(xs in prop::collection::vec(0i64..3, 4)) {
            prop_assert_eq!(xs.len(), 4);
        }

        #[test]
        fn string_pattern(s in ".{0,12}") {
            prop_assert!(s.len() <= 12);
            prop_assert!(s.is_ascii());
        }

        #[test]
        fn oneof_covers(v in prop_oneof![0u8..1, 10u8..11]) {
            prop_assert!(v == 0 || v == 10);
        }

        #[test]
        fn assume_skips(v in 0u32..10) {
            prop_assume!(v < 5);
            prop_assert!(v < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Doc comments before `#[test]` must parse.
        #[test]
        fn config_override_applies(_v in any::<bool>()) {
            prop_assert!(true);
        }

        /// An assumption that can never hold must fail loudly instead of
        /// passing vacuously.
        #[test]
        #[should_panic(expected = "holds too rarely")]
        fn unsatisfiable_assume_panics(v in 0u32..10) {
            prop_assume!(v > 100);
            prop_assert!(false, "unreachable: the assumption always rejects");
        }
    }
}
