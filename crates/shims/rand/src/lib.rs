//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This build environment has no network access to a crate registry, so the
//! workspace vendors a minimal, deterministic, API-compatible subset of
//! `rand` 0.9: [`RngCore`], [`Rng`] (`random_range` / `random_bool`),
//! [`SeedableRng`] and [`rngs::StdRng`].
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64 — *not* the ChaCha12 core of the real crate, so seeded
//! streams differ from upstream `rand`. Everything in this workspace that
//! consumes seeded randomness asserts properties (determinism, invariants,
//! statistical tolerances), never exact upstream streams.

#![forbid(unsafe_code)]

/// Advances `state` by the SplitMix64 golden-ratio increment and returns
/// the finalized output word.
///
/// This is the workspace's one canonical copy of the SplitMix64 step: the
/// deterministic agent→shard routing hash, [`SeedableRng::seed_from_u64`]
/// seed expansion and the `SimNet` latency/loss sampler all call it, so
/// their streams are bit-identical across crates and can never drift
/// apart. The regression tests below pin exact output words.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The stateless 64-bit avalanche finalizer (MurmurHash3 / SplitMix64
/// `mix`): a bijective scramble with no stream state.
///
/// The bus ledger's sender→stripe hash is this finalizer over the party's
/// tag and id; the regression tests below pin exact output words so the
/// stripe assignment can never silently move.
pub fn mix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[low, high]` (both inclusive).
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: $t, high: $t) -> $t {
                assert!(low <= high, "sample_inclusive: low > high");
                // Work in u128 offsets from `low`; the modulo bias over a
                // 128-bit draw is < 2^-64, far below anything a test can see.
                let span = (high as i128).wrapping_sub(low as i128) as u128 + 1;
                if span == 0 {
                    // Full-width range of a 128-bit type.
                    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    return v as $t;
                }
                let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                let off = v % span;
                ((low as i128).wrapping_add(off as i128)) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: u128, high: u128) -> u128 {
        assert!(low <= high, "sample_inclusive: low > high");
        let span = high.wrapping_sub(low).wrapping_add(1);
        let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if span == 0 {
            v
        } else {
            low.wrapping_add(v % span)
        }
    }
}

impl SampleUniform for i128 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: i128, high: i128) -> i128 {
        let off = u128::sample_inclusive(rng, 0, high.wrapping_sub(low) as u128);
        low.wrapping_add(off as i128)
    }
}

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        low + (high - low) * unit
    }
}

/// Ranges that can parameterise [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + One> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_inclusive(rng, self.start, T::dec(self.end))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Helper for half-open integer ranges: `end - 1`.
pub trait One: Sized {
    /// Returns the predecessor of `v` (used to close a half-open range).
    fn dec(v: Self) -> Self;
}

macro_rules! impl_one {
    ($($t:ty),*) => {$(
        impl One for $t {
            fn dec(v: $t) -> $t { v - 1 }
        }
    )*};
}

impl_one!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (including `dyn RngCore`).
pub trait Rng: RngCore {
    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn random_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p={p} outside [0,1]");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it via
    /// [`splitmix64`].
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let z = crate::splitmix64(&mut state);
            for (b, byte) in chunk.iter_mut().zip(z.to_le_bytes()) {
                *b = byte;
            }
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Statistically strong and fast; **not** cryptographic and **not**
    /// stream-compatible with upstream `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{mix64, splitmix64, Rng, RngCore, SeedableRng};

    #[test]
    fn splitmix64_stream_is_pinned() {
        // Exact output words of the canonical SplitMix64 step. Routing
        // (agent→shard) and seed expansion both derive from this stream,
        // so these constants moving means determinism moved.
        for (start, expected) in [
            (
                0u64,
                [
                    0xE220_A839_7B1D_CDAF,
                    0x6E78_9E6A_A1B9_65F4,
                    0x06C4_5D18_8009_454F,
                ],
            ),
            (
                1,
                [
                    0x910A_2DEC_8902_5CC1,
                    0xBEEB_8DA1_658E_EC67,
                    0xF893_A2EE_FB32_555E,
                ],
            ),
            (
                42,
                [
                    0xBDD7_3226_2FEB_6E95,
                    0x28EF_E333_B266_F103,
                    0x4752_6757_130F_9F52,
                ],
            ),
        ] {
            let mut state = start;
            for word in expected {
                assert_eq!(splitmix64(&mut state), word, "stream from {start}");
            }
        }
    }

    #[test]
    fn mix64_outputs_are_pinned() {
        // Exact finalizer outputs: the bus ledger's stripe hash depends on
        // these words bit-for-bit.
        assert_eq!(mix64(0), 0);
        assert_eq!(mix64(1), 0xFF51_AFD7_92FD_5B26);
        assert_eq!(mix64(0x9E37_79B9_7F4A_7C15), 0x9341_CA26_3702_A9E6);
    }

    #[test]
    fn seed_from_u64_expands_through_the_shared_splitmix() {
        // seed_from_u64 must be exactly four splitmix64 draws.
        let rng = StdRng::seed_from_u64(42);
        let mut state = 42u64;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(8) {
            chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
        }
        let mut expected = StdRng::from_seed(seed);
        let mut actual = rng;
        for _ in 0..16 {
            assert_eq!(actual.next_u64(), expected.next_u64());
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u64 = rng.random_range(0..100);
            assert!(v < 100);
            let w: i64 = rng.random_range(-50..=50);
            assert!((-50..=50).contains(&w));
            let u: usize = rng.random_range(1..2);
            assert_eq!(u, 1);
        }
    }

    #[test]
    fn random_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits={hits}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut dyn RngCore = &mut rng;
        let v = dynrng.random_range(0usize..10);
        assert!(v < 10);
        let _ = dynrng.random_bool(0.5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
