//! Property-based tests for the game-theory substrate.

use proptest::prelude::*;
use ra_exact::Rational;
use ra_games::{
    dominant_strategy_equilibrium, Dominance, GameGenerator, MixedProfile, MixedStrategy,
    ProfileIter, StrategyProfile, SymmetricBinaryGame,
};

fn arb_counts() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..4, 1..4)
}

proptest! {
    /// isNash ⟺ no improving unilateral deviation, by definition — checked
    /// against an independent brute-force search.
    #[test]
    fn nash_iff_no_improving_deviation(seed in 0u64..500, counts in arb_counts()) {
        let game = GameGenerator::seeded(seed).strategic(counts.clone(), -10..=10);
        for profile in ProfileIter::new(counts.clone()) {
            let mut improvable = false;
            for (agent, &count) in counts.iter().enumerate() {
                for s in 0..count {
                    if s == profile.strategy_of(agent) { continue; }
                    let dev = profile.with_strategy(agent, s);
                    if game.payoff(agent, &dev) > game.payoff(agent, &profile) {
                        improvable = true;
                    }
                }
            }
            prop_assert_eq!(game.is_pure_nash(&profile), !improvable);
            prop_assert_eq!(game.improving_deviation(&profile).is_none(), !improvable);
        }
    }

    /// Every profile returned by pure_nash_equilibria satisfies is_pure_nash,
    /// and none are missed.
    #[test]
    fn pure_nash_enumeration_is_exact(seed in 0u64..200, counts in arb_counts()) {
        let game = GameGenerator::seeded(seed).strategic(counts.clone(), -5..=5);
        let eqs = game.pure_nash_equilibria();
        for e in &eqs {
            prop_assert!(game.is_pure_nash(e));
        }
        let expected: Vec<StrategyProfile> = ProfileIter::new(counts)
            .filter(|p| game.is_pure_nash(p))
            .collect();
        prop_assert_eq!(eqs, expected);
    }

    /// A dominant-strategy equilibrium (weak or strict) is a pure Nash
    /// equilibrium — the implication the auction certificates rely on.
    #[test]
    fn dominant_equilibrium_is_nash(seed in 0u64..300, counts in arb_counts()) {
        let game = GameGenerator::seeded(seed).strategic(counts, -5..=5);
        for kind in [Dominance::Strict, Dominance::Weak] {
            if let Some(eq) = dominant_strategy_equilibrium(&game, kind) {
                prop_assert!(game.is_pure_nash(&eq));
            }
        }
    }

    /// Best responses really are the argmax set.
    #[test]
    fn best_responses_are_argmax(seed in 0u64..200, counts in arb_counts()) {
        let game = GameGenerator::seeded(seed).strategic(counts.clone(), -10..=10);
        let base = StrategyProfile::zeros(counts.len());
        for (agent, &count) in counts.iter().enumerate() {
            let brs = game.best_responses(agent, &base);
            prop_assert!(!brs.is_empty());
            let best = game.payoff(agent, &base.with_strategy(agent, brs[0])).clone();
            for s in 0..count {
                let u = game.payoff(agent, &base.with_strategy(agent, s));
                if brs.contains(&s) {
                    prop_assert_eq!(u.clone(), best.clone());
                } else {
                    prop_assert!(u < &best);
                }
            }
        }
    }

    /// profile_le is a partial order: reflexive, transitive; and
    /// incomparability is symmetric and disjoint from comparability.
    #[test]
    fn profile_order_laws(seed in 0u64..100) {
        let counts = vec![2usize, 2, 2];
        let game = GameGenerator::seeded(seed).strategic(counts.clone(), -3..=3);
        let profiles: Vec<StrategyProfile> = ProfileIter::new(counts).collect();
        for a in &profiles {
            prop_assert!(game.profile_le(a, a), "reflexive");
            for b in &profiles {
                prop_assert_eq!(
                    game.profiles_incomparable(a, b),
                    game.profiles_incomparable(b, a),
                    "symmetric incomparability"
                );
                if game.profiles_incomparable(a, b) {
                    prop_assert!(!game.profile_le(a, b) && !game.profile_le(b, a));
                }
                for c in &profiles {
                    if game.profile_le(a, b) && game.profile_le(b, c) {
                        prop_assert!(game.profile_le(a, c), "transitive");
                    }
                }
            }
        }
    }

    /// The exact mixed-Nash check accepts uniform play on zero-sum symmetric
    /// games whose value is 0 only when it is actually an equilibrium; in
    /// particular it always accepts the planted pure equilibrium.
    #[test]
    fn planted_pure_equilibria_verify(seed in 0u64..300, r in 1usize..5, c in 1usize..5) {
        let mut generator = GameGenerator::seeded(seed);
        let planted = ((seed as usize) % r, (seed as usize) % c);
        let game = generator.bimatrix_with_planted_pure(r, c, planted);
        let profile = MixedProfile {
            row: MixedStrategy::pure(r, planted.0),
            col: MixedStrategy::pure(c, planted.1),
        };
        prop_assert!(game.is_nash(&profile));
    }

    /// Expected payoffs are bilinear: E[xᵀAy] interpolates pure payoffs.
    #[test]
    fn expected_payoff_bilinear(seed in 0u64..100) {
        let game = GameGenerator::seeded(seed).bimatrix(2, 2, -10..=10);
        let x = MixedStrategy::try_new(vec![Rational::new(1, 3), Rational::new(2, 3)]).unwrap();
        let y = MixedStrategy::try_new(vec![Rational::new(1, 4), Rational::new(3, 4)]).unwrap();
        let mut expected = Rational::zero();
        for i in 0..2 {
            for j in 0..2 {
                expected += &(&(x.prob(i) * y.prob(j)) * game.a(i, j));
            }
        }
        prop_assert_eq!(game.expected_row_payoff(&x, &y), expected);
    }

    /// Symmetric-game expected payoffs match the strategic expansion when
    /// all agents play the same pure action.
    #[test]
    fn symmetric_matches_expansion(n in 2usize..5, v in 1i64..6, c in 1i64..4) {
        let game = SymmetricBinaryGame::from_fn(n, |own, others| {
            // participation-game shape
            match own {
                1 if others >= 1 => Rational::from(v - c),
                1 => Rational::from(-c),
                0 if others >= 2 => Rational::from(v),
                _ => Rational::zero(),
            }
        });
        let strategic = game.to_strategic();
        // All-participate profile:
        let all_in = StrategyProfile::new(vec![1; n]);
        let expect = game.payoff(1, n - 1).clone();
        for agent in 0..n {
            prop_assert_eq!(strategic.payoff(agent, &all_in).clone(), expect.clone());
        }
        // Expected payoff at p = 1 equals the deterministic payoff.
        prop_assert_eq!(game.expected_payoff(1, &Rational::one()), expect);
    }

    /// swap_roles is an involution preserving the Nash property of swapped
    /// profiles.
    #[test]
    fn swap_roles_involution(seed in 0u64..200, r in 1usize..4, c in 1usize..4) {
        let game = GameGenerator::seeded(seed).bimatrix(r, c, -9..=9);
        let double = game.swap_roles().swap_roles();
        prop_assert_eq!(double.payoff_a().clone(), game.payoff_a().clone());
        prop_assert_eq!(double.payoff_b().clone(), game.payoff_b().clone());
    }
}

#[test]
fn bimatrix_nash_matches_strategic_on_pure_profiles() {
    for seed in 0..50 {
        let game = GameGenerator::seeded(seed).bimatrix(3, 3, -8..=8);
        let strategic = game.to_strategic();
        for p in strategic.profiles() {
            let mp = MixedProfile {
                row: MixedStrategy::pure(3, p.strategy_of(0)),
                col: MixedStrategy::pure(3, p.strategy_of(1)),
            };
            assert_eq!(
                strategic.is_pure_nash(&p),
                game.is_nash(&mp),
                "seed {seed} profile {p}"
            );
        }
    }
}
