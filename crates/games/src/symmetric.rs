//! Symmetric two-action games among `n` agents (§5 substrate).
//!
//! The participation game is symmetric: every agent chooses between action 0
//! ("stay out") and action 1 ("participate"), and an agent's payoff depends
//! only on its own action and on *how many* others chose action 1. By Nash's
//! theorem such games have a symmetric mixed equilibrium in which everyone
//! plays action 1 with the same probability `p`; the equilibrium condition is
//! the indifference equation the paper's verifier checks (Eq. (2)/(5)).

use std::fmt;

use ra_exact::{binomial_pmf, Rational};

use crate::strategic::StrategicGame;

/// A symmetric game where each of `n` agents picks action 0 or 1 and payoffs
/// depend only on the agent's own action and the number of *other* agents
/// playing action 1.
///
/// # Examples
///
/// ```
/// use ra_games::SymmetricBinaryGame;
/// use ra_exact::{rat, Rational};
///
/// // Toy volunteer game: volunteering (action 1) costs 1, but if anyone
/// // volunteers everyone receives 3.
/// let g = SymmetricBinaryGame::from_fn(4, |own, others_in| {
///     let benefit = if own == 1 || others_in > 0 { 3 } else { 0 };
///     Rational::from(benefit - own as i64)
/// });
/// assert_eq!(g.num_agents(), 4);
/// assert_eq!(*g.payoff(1, 0), rat(2, 1));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SymmetricBinaryGame {
    n: usize,
    /// `payoff[own][k]` = utility when playing `own ∈ {0,1}` and `k` of the
    /// `n − 1` other agents play action 1.
    payoff: [Vec<Rational>; 2],
}

impl SymmetricBinaryGame {
    /// Builds the game by tabulating `payoff(own_action, others_playing_1)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn from_fn(n: usize, mut payoff: impl FnMut(u8, usize) -> Rational) -> SymmetricBinaryGame {
        assert!(n > 0, "symmetric game needs at least one agent");
        let row = |own: u8, payoff: &mut dyn FnMut(u8, usize) -> Rational| {
            (0..n).map(|k| payoff(own, k)).collect::<Vec<_>>()
        };
        SymmetricBinaryGame {
            n,
            payoff: [row(0, &mut payoff), row(1, &mut payoff)],
        }
    }

    /// Number of agents.
    pub fn num_agents(&self) -> usize {
        self.n
    }

    /// Payoff for playing `own` when `others_in` of the other `n − 1` agents
    /// play action 1.
    ///
    /// # Panics
    ///
    /// Panics if `own > 1` or `others_in >= n`.
    pub fn payoff(&self, own: u8, others_in: usize) -> &Rational {
        assert!(own <= 1, "binary action game");
        assert!(others_in < self.n, "at most n-1 other agents");
        &self.payoff[own as usize][others_in]
    }

    /// Expected payoff of playing `own` when every other agent independently
    /// plays action 1 with probability `p` (exact).
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn expected_payoff(&self, own: u8, p: &Rational) -> Rational {
        let others = (self.n - 1) as u64;
        let mut acc = Rational::zero();
        for k in 0..self.n {
            let weight = binomial_pmf(others, k as u64, p);
            if !weight.is_zero() {
                acc += &(&weight * self.payoff(own, k));
            }
        }
        acc
    }

    /// The indifference gap `E[u | play 1] − E[u | play 0]` at symmetric
    /// probability `p`. A symmetric mixed equilibrium with `0 < p < 1` is
    /// exactly a root of this function — Eq. (2) of the paper.
    pub fn indifference_gap(&self, p: &Rational) -> Rational {
        self.expected_payoff(1, p) - self.expected_payoff(0, p)
    }

    /// Checks whether symmetric play with probability `p` is a (symmetric)
    /// Nash equilibrium: interior `p` requires exact indifference, while
    /// boundary values require the corresponding weak preference.
    pub fn is_symmetric_equilibrium(&self, p: &Rational) -> bool {
        if p.is_negative() || p > &Rational::one() {
            return false;
        }
        let gap = self.indifference_gap(p);
        if p.is_zero() {
            !gap.is_positive()
        } else if p == &Rational::one() {
            !gap.is_negative()
        } else {
            gap.is_zero()
        }
    }

    /// Expands to the full `n`-agent [`StrategicGame`] (2 strategies each).
    ///
    /// Exponential in `n`; intended for small games and for cross-checking
    /// the symmetric analysis against the exhaustive §3 machinery.
    pub fn to_strategic(&self) -> StrategicGame {
        let n = self.n;
        let payoff = self.payoff.clone();
        StrategicGame::from_payoff_fn(vec![2; n], move |profile| {
            let total: usize = profile.strategies().iter().sum();
            (0..n)
                .map(|i| {
                    let own = profile.strategy_of(i) as u8;
                    let others = total - profile.strategy_of(i);
                    payoff[own as usize][others].clone()
                })
                .collect()
        })
    }
}

impl fmt::Debug for SymmetricBinaryGame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SymmetricBinaryGame({} agents)", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;

    /// The paper's participation game with k = 2:
    /// * stay out (0): gain v if ≥ 2 others participate... no — gain v if at
    ///   least k participants exist among the others; here the rule is about
    ///   *total* participants, so for a non-participant it needs ≥ 2 others.
    /// * participate (1): v − c if ≥ 1 other participates (total ≥ 2),
    ///   −c if alone.
    fn participation_game(n: usize, v: i64, c: i64) -> SymmetricBinaryGame {
        SymmetricBinaryGame::from_fn(n, move |own, others| match own {
            1 if others >= 1 => Rational::from(v - c),
            1 => Rational::from(-c),
            0 if others >= 2 => Rational::from(v),
            _ => Rational::zero(),
        })
    }

    #[test]
    fn paper_worked_equilibrium() {
        // §5: c/v = 3/8, n = 3 ⇒ p = 1/4 is the symmetric equilibrium
        // (scale to integers: v = 8, c = 3).
        let g = participation_game(3, 8, 3);
        assert!(g.is_symmetric_equilibrium(&rat(1, 4)));
        assert!(!g.is_symmetric_equilibrium(&rat(1, 3)));
        // Expected equilibrium gain is v/16 = 1/2 for v = 8.
        assert_eq!(g.expected_payoff(0, &rat(1, 4)), rat(1, 2));
        assert_eq!(g.expected_payoff(1, &rat(1, 4)), rat(1, 2));
    }

    #[test]
    fn indifference_gap_sign_structure() {
        let g = participation_game(3, 8, 3);
        // Below the equilibrium p participating is worse...
        assert!(g.indifference_gap(&rat(1, 10)).is_negative());
        // ...at p = 1/4 indifferent...
        assert!(g.indifference_gap(&rat(1, 4)).is_zero());
        // ...and somewhere above (before the second root at p = 3/4 — the
        // equation c = v(n−1)p(1−p)^{n−2} is quadratic for n = 3), better.
        assert!(g.indifference_gap(&rat(1, 2)).is_positive());
        // p = 3/4 is the second symmetric equilibrium.
        assert!(g.is_symmetric_equilibrium(&rat(3, 4)));
    }

    #[test]
    fn boundary_equilibria() {
        // If participating strictly dominates (c = 0, always-on value),
        // p = 1 is an equilibrium.
        let g = SymmetricBinaryGame::from_fn(3, |own, _| Rational::from(own as i64));
        assert!(g.is_symmetric_equilibrium(&Rational::one()));
        assert!(!g.is_symmetric_equilibrium(&Rational::zero()));
        // p = 0 equilibrium when participation never pays.
        let g0 = participation_game(3, 8, 3);
        assert!(g0.is_symmetric_equilibrium(&Rational::zero()));
    }

    #[test]
    fn out_of_range_p_rejected() {
        let g = participation_game(3, 8, 3);
        assert!(!g.is_symmetric_equilibrium(&rat(5, 4)));
        assert!(!g.is_symmetric_equilibrium(&rat(-1, 4)));
    }

    #[test]
    fn expected_payoff_at_boundaries() {
        let g = participation_game(4, 8, 3);
        // p = 0: others never participate — staying out yields 0,
        // participating yields −c.
        assert_eq!(g.expected_payoff(0, &Rational::zero()), rat(0, 1));
        assert_eq!(g.expected_payoff(1, &Rational::zero()), rat(-3, 1));
        // p = 1: all 3 others participate — staying out yields v = 8,
        // participating yields v − c = 5.
        assert_eq!(g.expected_payoff(0, &Rational::one()), rat(8, 1));
        assert_eq!(g.expected_payoff(1, &Rational::one()), rat(5, 1));
    }

    #[test]
    fn strategic_expansion_agrees() {
        let g = participation_game(3, 8, 3);
        let s = g.to_strategic();
        assert_eq!(s.num_agents(), 3);
        // Profile (1,1,0): agents 0,1 participate, 2 stays out.
        let p = vec![1, 1, 0].into();
        assert_eq!(*s.payoff(0, &p), rat(5, 1)); // v - c = 5
        assert_eq!(*s.payoff(2, &p), rat(8, 1)); // v = 8
                                                 // Pure profiles where exactly 2 participate are pure equilibria:
                                                 // participants get v−c=5 > would-be 0 by leaving (then only 1 left);
                                                 // the outsider gets v=8 > v−c=5 by joining.
        assert!(s.is_pure_nash(&p));
        // Nobody participates: also an equilibrium (joining alone costs c).
        assert!(s.is_pure_nash(&vec![0, 0, 0].into()));
        // All participate: not an equilibrium (leave and still get v).
        assert!(!s.is_pure_nash(&vec![1, 1, 1].into()));
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn zero_agents_rejected() {
        let _ = SymmetricBinaryGame::from_fn(0, |_, _| Rational::zero());
    }
}
