//! Bimatrix games and mixed strategies (§4 of the paper).
//!
//! A 2-agent game is given by `n × m` payoff matrices `A` (row agent) and
//! `B` (column agent). Computing a mixed Nash equilibrium here is
//! PPAD-complete in general — that asymmetry between *computing* and
//! *verifying* is exactly what the P1/P2 interactive proofs exploit.
//! Everything is exact ([`Rational`]), so `is_nash` is a sound decision
//! procedure, not a tolerance check.

use std::fmt;

use ra_exact::{Matrix, Rational};

use crate::strategic::StrategicGame;

/// Error returned when a probability vector is not a valid mixed strategy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MixedStrategyError {
    /// The vector is empty.
    Empty,
    /// Some entry is negative.
    NegativeProbability {
        /// Index of the offending entry.
        index: usize,
    },
    /// Entries do not sum to one.
    DoesNotSumToOne,
}

impl fmt::Display for MixedStrategyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixedStrategyError::Empty => write!(f, "mixed strategy over zero strategies"),
            MixedStrategyError::NegativeProbability { index } => {
                write!(f, "negative probability at index {index}")
            }
            MixedStrategyError::DoesNotSumToOne => write!(f, "probabilities do not sum to 1"),
        }
    }
}

impl std::error::Error for MixedStrategyError {}

/// A mixed strategy: an exact probability distribution over pure strategies.
///
/// # Examples
///
/// ```
/// use ra_games::MixedStrategy;
/// use ra_exact::rat;
///
/// let x = MixedStrategy::try_new(vec![rat(1, 3), rat(2, 3)]).unwrap();
/// assert_eq!(x.support(), vec![0, 1]);
/// assert_eq!(MixedStrategy::pure(3, 1).support(), vec![1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct MixedStrategy(Vec<Rational>);

impl MixedStrategy {
    /// Validates and wraps a probability vector.
    ///
    /// # Errors
    ///
    /// Returns an error if the vector is empty, has a negative entry, or
    /// does not sum to exactly one.
    pub fn try_new(probs: Vec<Rational>) -> Result<MixedStrategy, MixedStrategyError> {
        if probs.is_empty() {
            return Err(MixedStrategyError::Empty);
        }
        if let Some(index) = probs.iter().position(Rational::is_negative) {
            return Err(MixedStrategyError::NegativeProbability { index });
        }
        let total: Rational = probs.iter().fold(Rational::zero(), |a, b| a + b);
        if total != Rational::one() {
            return Err(MixedStrategyError::DoesNotSumToOne);
        }
        Ok(MixedStrategy(probs))
    }

    /// The uniform distribution over `n` strategies.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn uniform(n: usize) -> MixedStrategy {
        assert!(n > 0, "uniform mixed strategy over zero strategies");
        MixedStrategy(vec![Rational::new(1, n as i64); n])
    }

    /// The pure strategy `i` as a degenerate distribution.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    pub fn pure(n: usize, i: usize) -> MixedStrategy {
        assert!(i < n, "pure strategy index out of range");
        let mut probs = vec![Rational::zero(); n];
        probs[i] = Rational::one();
        MixedStrategy(probs)
    }

    /// Number of pure strategies.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if there are no strategies (never true for validated
    /// values; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Probability assigned to pure strategy `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn prob(&self, i: usize) -> &Rational {
        &self.0[i]
    }

    /// All probabilities as a slice.
    pub fn probs(&self) -> &[Rational] {
        &self.0
    }

    /// The support: indices played with non-zero probability (sorted).
    pub fn support(&self) -> Vec<usize> {
        (0..self.0.len())
            .filter(|&i| !self.0[i].is_zero())
            .collect()
    }
}

impl fmt::Debug for MixedStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "]")
    }
}

/// A mixed strategy profile for a bimatrix game.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MixedProfile {
    /// Row agent's mixed strategy.
    pub row: MixedStrategy,
    /// Column agent's mixed strategy.
    pub col: MixedStrategy,
}

/// A 2-agent game in matrix form.
///
/// # Examples
///
/// ```
/// use ra_games::BimatrixGame;
///
/// let g = BimatrixGame::from_i64_tables(
///     &[&[1, 1], &[0, 2]],
///     &[&[1, 1], &[1, 0]],
/// );
/// assert_eq!(g.rows(), 2);
/// assert_eq!(g.cols(), 2);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct BimatrixGame {
    a: Matrix,
    b: Matrix,
}

impl BimatrixGame {
    /// Creates a game from the two payoff matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrices have different shapes or are empty.
    pub fn new(a: Matrix, b: Matrix) -> BimatrixGame {
        assert_eq!(a.rows(), b.rows(), "payoff matrices must share shape");
        assert_eq!(a.cols(), b.cols(), "payoff matrices must share shape");
        assert!(a.rows() > 0 && a.cols() > 0, "empty bimatrix game");
        BimatrixGame { a, b }
    }

    /// Convenience constructor from integer tables.
    ///
    /// # Panics
    ///
    /// Panics on ragged or mismatched tables.
    pub fn from_i64_tables(a: &[&[i64]], b: &[&[i64]]) -> BimatrixGame {
        let to_matrix = |t: &[&[i64]]| {
            Matrix::from_rows(
                t.iter()
                    .map(|row| row.iter().map(|&v| Rational::from(v)).collect())
                    .collect(),
            )
        };
        BimatrixGame::new(to_matrix(a), to_matrix(b))
    }

    /// Number of row-agent pure strategies (`n`).
    pub fn rows(&self) -> usize {
        self.a.rows()
    }

    /// Number of column-agent pure strategies (`m`).
    pub fn cols(&self) -> usize {
        self.a.cols()
    }

    /// Row agent's payoff matrix `A`.
    pub fn payoff_a(&self) -> &Matrix {
        &self.a
    }

    /// Column agent's payoff matrix `B`.
    pub fn payoff_b(&self) -> &Matrix {
        &self.b
    }

    /// Row agent's payoff for the pure profile `(i, j)`.
    pub fn a(&self, i: usize, j: usize) -> &Rational {
        &self.a[(i, j)]
    }

    /// Column agent's payoff for the pure profile `(i, j)`.
    pub fn b(&self, i: usize, j: usize) -> &Rational {
        &self.b[(i, j)]
    }

    /// The same game with the agents' roles swapped: the column agent
    /// becomes the row agent of the returned game.
    ///
    /// Useful because the paper states P1/P2 for the row agent and notes
    /// "it is easy to state the Verifier for the column agent".
    pub fn swap_roles(&self) -> BimatrixGame {
        BimatrixGame {
            a: self.b.transpose(),
            b: self.a.transpose(),
        }
    }

    /// Expected payoff `xᵀ A y` of the row agent.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expected_row_payoff(&self, x: &MixedStrategy, y: &MixedStrategy) -> Rational {
        self.expected(&self.a, x, y)
    }

    /// Expected payoff `xᵀ B y` of the column agent.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn expected_col_payoff(&self, x: &MixedStrategy, y: &MixedStrategy) -> Rational {
        self.expected(&self.b, x, y)
    }

    fn expected(&self, m: &Matrix, x: &MixedStrategy, y: &MixedStrategy) -> Rational {
        assert_eq!(x.len(), self.rows(), "row strategy dimension mismatch");
        assert_eq!(y.len(), self.cols(), "column strategy dimension mismatch");
        let mut acc = Rational::zero();
        for i in 0..self.rows() {
            if x.prob(i).is_zero() {
                continue;
            }
            let mut row_acc = Rational::zero();
            for j in 0..self.cols() {
                if y.prob(j).is_zero() {
                    continue;
                }
                row_acc += &(&m[(i, j)] * y.prob(j));
            }
            acc += &(x.prob(i) * &row_acc);
        }
        acc
    }

    /// Expected payoff `(A y)_i` of the pure row `i` against the column mix.
    ///
    /// This is the quantity the P1 verifier compares against λ₁ for rows
    /// outside the support.
    pub fn row_payoff_against(&self, i: usize, y: &MixedStrategy) -> Rational {
        assert_eq!(y.len(), self.cols(), "column strategy dimension mismatch");
        let mut acc = Rational::zero();
        for j in 0..self.cols() {
            if !y.prob(j).is_zero() {
                acc += &(&self.a[(i, j)] * y.prob(j));
            }
        }
        acc
    }

    /// Expected payoff `(xᵀ B)_j` of the pure column `j` against the row mix.
    pub fn col_payoff_against(&self, x: &MixedStrategy, j: usize) -> Rational {
        assert_eq!(x.len(), self.rows(), "row strategy dimension mismatch");
        let mut acc = Rational::zero();
        for i in 0..self.rows() {
            if !x.prob(i).is_zero() {
                acc += &(x.prob(i) * &self.b[(i, j)]);
            }
        }
        acc
    }

    /// Exact mixed-Nash test: every pure strategy of either agent earns at
    /// most the profile's expected payoff for that agent.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn is_nash(&self, profile: &MixedProfile) -> bool {
        let lambda1 = self.expected_row_payoff(&profile.row, &profile.col);
        let lambda2 = self.expected_col_payoff(&profile.row, &profile.col);
        (0..self.rows()).all(|i| self.row_payoff_against(i, &profile.col) <= lambda1)
            && (0..self.cols()).all(|j| self.col_payoff_against(&profile.row, j) <= lambda2)
    }

    /// The equilibrium payoff pair `(λ₁, λ₂)` of a profile.
    pub fn equilibrium_values(&self, profile: &MixedProfile) -> (Rational, Rational) {
        (
            self.expected_row_payoff(&profile.row, &profile.col),
            self.expected_col_payoff(&profile.row, &profile.col),
        )
    }

    /// Returns `true` if the game is zero-sum (`B = −A`).
    pub fn is_zero_sum(&self) -> bool {
        (0..self.rows()).all(|i| {
            (0..self.cols()).all(|j| &self.a[(i, j)] + &self.b[(i, j)] == Rational::zero())
        })
    }

    /// Expands to a 2-agent [`StrategicGame`] (for the §3 machinery).
    pub fn to_strategic(&self) -> StrategicGame {
        StrategicGame::from_payoff_fn(vec![self.rows(), self.cols()], |p| {
            let (i, j) = (p.strategy_of(0), p.strategy_of(1));
            vec![self.a[(i, j)].clone(), self.b[(i, j)].clone()]
        })
    }
}

impl fmt::Debug for BimatrixGame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BimatrixGame({}x{})", self.rows(), self.cols())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;

    fn matching_pennies() -> BimatrixGame {
        BimatrixGame::from_i64_tables(&[&[1, -1], &[-1, 1]], &[&[-1, 1], &[1, -1]])
    }

    #[test]
    fn mixed_strategy_validation() {
        assert!(MixedStrategy::try_new(vec![]).is_err());
        assert_eq!(
            MixedStrategy::try_new(vec![rat(-1, 2), rat(3, 2)]),
            Err(MixedStrategyError::NegativeProbability { index: 0 })
        );
        assert_eq!(
            MixedStrategy::try_new(vec![rat(1, 2), rat(1, 3)]),
            Err(MixedStrategyError::DoesNotSumToOne)
        );
        let ok = MixedStrategy::try_new(vec![rat(1, 2), rat(1, 2)]).unwrap();
        assert_eq!(ok.support(), vec![0, 1]);
    }

    #[test]
    fn uniform_and_pure() {
        assert_eq!(MixedStrategy::uniform(4).prob(2), &rat(1, 4));
        let p = MixedStrategy::pure(3, 2);
        assert_eq!(p.support(), vec![2]);
        assert_eq!(p.prob(0), &rat(0, 1));
    }

    #[test]
    fn matching_pennies_uniform_is_nash() {
        let g = matching_pennies();
        let profile = MixedProfile {
            row: MixedStrategy::uniform(2),
            col: MixedStrategy::uniform(2),
        };
        assert!(g.is_nash(&profile));
        let (l1, l2) = g.equilibrium_values(&profile);
        assert_eq!(l1, rat(0, 1));
        assert_eq!(l2, rat(0, 1));
        assert!(g.is_zero_sum());
    }

    #[test]
    fn pure_profile_detection() {
        // Prisoner's dilemma: (defect, defect) is the unique equilibrium.
        let g = BimatrixGame::from_i64_tables(&[&[-1, -3], &[0, -2]], &[&[-1, 0], &[-3, -2]]);
        let dd = MixedProfile {
            row: MixedStrategy::pure(2, 1),
            col: MixedStrategy::pure(2, 1),
        };
        let cc = MixedProfile {
            row: MixedStrategy::pure(2, 0),
            col: MixedStrategy::pure(2, 0),
        };
        assert!(g.is_nash(&dd));
        assert!(!g.is_nash(&cc));
        assert!(!g.is_zero_sum());
    }

    #[test]
    fn fig5_game_equilibria() {
        // Fig. 5: A row strategy (pure A) with ANY column mix q_C + q_D = 1,
        // q_D ≤ 1/2 is an equilibrium — the Remark 2 non-identifiability.
        let g = BimatrixGame::from_i64_tables(&[&[1, 1], &[0, 2]], &[&[1, 1], &[1, 0]]);
        for (qc, qd) in [
            (rat(1, 1), rat(0, 1)),
            (rat(1, 2), rat(1, 2)),
            (rat(3, 4), rat(1, 4)),
        ] {
            let profile = MixedProfile {
                row: MixedStrategy::pure(2, 0),
                col: MixedStrategy::try_new(vec![qc, qd]).unwrap(),
            };
            assert!(g.is_nash(&profile), "q_D <= 1/2 must be an equilibrium");
            let (l1, l2) = g.equilibrium_values(&profile);
            assert_eq!(l1, rat(1, 1));
            assert_eq!(l2, rat(1, 1));
        }
        // q_D > 1/2 breaks it: row agent prefers B.
        let bad = MixedProfile {
            row: MixedStrategy::pure(2, 0),
            col: MixedStrategy::try_new(vec![rat(1, 4), rat(3, 4)]).unwrap(),
        };
        assert!(!g.is_nash(&bad));
    }

    #[test]
    fn swap_roles_preserves_equilibria() {
        let g = matching_pennies();
        let swapped = g.swap_roles();
        let profile = MixedProfile {
            row: MixedStrategy::uniform(2),
            col: MixedStrategy::uniform(2),
        };
        assert!(swapped.is_nash(&profile));
        assert_eq!(swapped.a(0, 1), g.b(1, 0));
    }

    #[test]
    fn to_strategic_round_trip() {
        let g = BimatrixGame::from_i64_tables(&[&[3, 0], &[5, 1]], &[&[3, 5], &[0, 1]]);
        let s = g.to_strategic();
        assert_eq!(*s.payoff(0, &vec![1, 0].into()), rat(5, 1));
        assert_eq!(*s.payoff(1, &vec![0, 1].into()), rat(5, 1));
        // Pure equilibria agree.
        for p in s.profiles() {
            let mp = MixedProfile {
                row: MixedStrategy::pure(2, p.strategy_of(0)),
                col: MixedStrategy::pure(2, p.strategy_of(1)),
            };
            assert_eq!(s.is_pure_nash(&p), g.is_nash(&mp), "profile {p}");
        }
    }

    #[test]
    fn payoff_against_matches_expected() {
        let g = matching_pennies();
        let y = MixedStrategy::try_new(vec![rat(1, 3), rat(2, 3)]).unwrap();
        // (Ay)_0 = 1*(1/3) + (-1)*(2/3) = -1/3.
        assert_eq!(g.row_payoff_against(0, &y), rat(-1, 3));
        let x = MixedStrategy::try_new(vec![rat(1, 4), rat(3, 4)]).unwrap();
        // (xB)_1 = 1*(1/4) + (-1)*(3/4) = -1/2.
        assert_eq!(g.col_payoff_against(&x, 1), rat(-1, 2));
    }
}
