//! Strategy dominance and dominant-strategy equilibria.
//!
//! Tadjouddine [29] (cited in the paper's related work) shows that verifying
//! a *Nash* equilibrium is polynomial while verifying a *dominant strategy*
//! equilibrium is NP-complete in general representations; for explicitly
//! tabulated games both are polynomial in the table size. These helpers feed
//! the auction case studies (second-price truthfulness certificates).

use crate::profile::{Agent, ProfileIter, Strategy, StrategyProfile};
use crate::strategic::StrategicGame;

/// Kind of dominance being claimed or tested.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dominance {
    /// Strictly better against every opponent profile.
    Strict,
    /// Weakly better against every opponent profile (and the definitions
    /// here do not require strictness anywhere).
    Weak,
}

/// Returns `true` if `strategy` of `agent` dominates `other` in the given
/// sense, i.e. for every combination of the other agents' strategies the
/// payoff of `strategy` is (strictly/weakly) better than `other`'s.
///
/// # Panics
///
/// Panics if indices are out of range.
pub fn dominates(
    game: &StrategicGame,
    agent: Agent,
    strategy: Strategy,
    other: Strategy,
    kind: Dominance,
) -> bool {
    assert!(agent < game.num_agents(), "agent out of range");
    let counts = game.strategy_counts();
    assert!(
        strategy < counts[agent] && other < counts[agent],
        "strategy out of range"
    );
    if strategy == other {
        // A strategy never strictly dominates itself; it trivially weakly
        // "dominates" itself, but callers almost always mean distinct
        // strategies, so be conservative for Strict only.
        return kind == Dominance::Weak;
    }
    // Iterate over opponents' joint strategies by enumerating full profiles
    // with the agent's coordinate pinned afterwards.
    let mut opponent_counts = counts.to_vec();
    opponent_counts[agent] = 1;
    ProfileIter::new(opponent_counts).all(|p| {
        let with_s = p.with_strategy(agent, strategy);
        let with_o = p.with_strategy(agent, other);
        match kind {
            Dominance::Strict => game.payoff(agent, &with_s) > game.payoff(agent, &with_o),
            Dominance::Weak => game.payoff(agent, &with_s) >= game.payoff(agent, &with_o),
        }
    })
}

/// Returns `true` if `strategy` is a dominant strategy for `agent`:
/// it dominates every *other* strategy of that agent in the given sense.
pub fn is_dominant_strategy(
    game: &StrategicGame,
    agent: Agent,
    strategy: Strategy,
    kind: Dominance,
) -> bool {
    (0..game.strategy_counts()[agent])
        .filter(|&o| o != strategy)
        .all(|o| dominates(game, agent, strategy, o, kind))
}

/// Finds each agent's dominant strategies (possibly empty).
pub fn dominant_strategies(game: &StrategicGame, kind: Dominance) -> Vec<Vec<Strategy>> {
    (0..game.num_agents())
        .map(|agent| {
            (0..game.strategy_counts()[agent])
                .filter(|&s| is_dominant_strategy(game, agent, s, kind))
                .collect()
        })
        .collect()
}

/// Returns a dominant-strategy equilibrium if every agent has a dominant
/// strategy (taking the lowest-indexed one for each agent).
///
/// A dominant-strategy equilibrium is in particular a pure Nash equilibrium
/// (weak dominance suffices for that implication).
pub fn dominant_strategy_equilibrium(
    game: &StrategicGame,
    kind: Dominance,
) -> Option<StrategyProfile> {
    let per_agent = dominant_strategies(game, kind);
    let choice: Option<Vec<Strategy>> = per_agent.iter().map(|ds| ds.first().copied()).collect();
    choice.map(StrategyProfile::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::Rational;

    fn r(v: i64) -> Rational {
        Rational::from(v)
    }

    fn prisoners_dilemma() -> StrategicGame {
        StrategicGame::from_tables(
            &[vec![r(-1), r(-3)], vec![r(0), r(-2)]],
            &[vec![r(-1), r(0)], vec![r(-3), r(-2)]],
        )
    }

    #[test]
    fn defection_strictly_dominates() {
        let g = prisoners_dilemma();
        for agent in 0..2 {
            assert!(dominates(&g, agent, 1, 0, Dominance::Strict));
            assert!(!dominates(&g, agent, 0, 1, Dominance::Weak));
            assert!(is_dominant_strategy(&g, agent, 1, Dominance::Strict));
        }
        let eq = dominant_strategy_equilibrium(&g, Dominance::Strict).unwrap();
        assert_eq!(eq, StrategyProfile::new(vec![1, 1]));
        assert!(g.is_pure_nash(&eq), "dominant strategy equilibrium is Nash");
    }

    #[test]
    fn weak_but_not_strict() {
        // Strategy 1 ties in one column and wins in the other.
        let g = StrategicGame::from_tables(
            &[vec![r(1), r(0)], vec![r(1), r(1)]],
            &[vec![r(0), r(0)], vec![r(0), r(0)]],
        );
        assert!(dominates(&g, 0, 1, 0, Dominance::Weak));
        assert!(!dominates(&g, 0, 1, 0, Dominance::Strict));
        assert!(is_dominant_strategy(&g, 0, 1, Dominance::Weak));
        assert!(!is_dominant_strategy(&g, 0, 1, Dominance::Strict));
    }

    #[test]
    fn no_dominant_strategy_in_matching_pennies() {
        let g = StrategicGame::from_tables(
            &[vec![r(1), r(-1)], vec![r(-1), r(1)]],
            &[vec![r(-1), r(1)], vec![r(1), r(-1)]],
        );
        assert_eq!(
            dominant_strategies(&g, Dominance::Weak),
            vec![Vec::<usize>::new(); 2]
        );
        assert!(dominant_strategy_equilibrium(&g, Dominance::Weak).is_none());
    }

    #[test]
    fn self_dominance_convention() {
        let g = prisoners_dilemma();
        assert!(!dominates(&g, 0, 1, 1, Dominance::Strict));
        assert!(dominates(&g, 0, 1, 1, Dominance::Weak));
    }

    #[test]
    fn three_player_dominance() {
        // Each agent's strategy 1 adds 1 to own payoff regardless of others.
        let g = StrategicGame::from_payoff_fn(vec![2, 2, 2], |p| {
            (0..3).map(|i| r(p.strategy_of(i) as i64)).collect()
        });
        let eq = dominant_strategy_equilibrium(&g, Dominance::Strict).unwrap();
        assert_eq!(eq, StrategyProfile::new(vec![1, 1, 1]));
    }
}
