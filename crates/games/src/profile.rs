//! Strategy profiles and profile enumeration.
//!
//! A *strategy profile* (Fig. 2's `Si`) assigns one pure strategy to every
//! agent. The §3 proof scheme enumerates all profiles (`allStrat`), so the
//! iterator here is the backbone of both the inventor's exhaustive search and
//! the kernel's `ForallProfiles` checking rule.

use std::fmt;

/// Identifier of an agent (player) — an index into the game's agent list.
pub type Agent = usize;

/// Identifier of a pure strategy — an index into an agent's strategy set.
pub type Strategy = usize;

/// A pure strategy profile: one strategy index per agent.
///
/// # Examples
///
/// ```
/// use ra_games::StrategyProfile;
///
/// let s = StrategyProfile::new(vec![0, 2, 1]);
/// assert_eq!(s.strategy_of(1), 2);
/// let t = s.with_strategy(1, 0);
/// assert_eq!(t.strategies(), &[0, 0, 1]);
/// assert_eq!(s.strategies(), &[0, 2, 1], "original is unchanged");
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrategyProfile(Vec<Strategy>);

impl StrategyProfile {
    /// Creates a profile from per-agent strategy indices.
    pub fn new(strategies: Vec<Strategy>) -> StrategyProfile {
        StrategyProfile(strategies)
    }

    /// The all-zeros profile for `n` agents.
    pub fn zeros(n: usize) -> StrategyProfile {
        StrategyProfile(vec![0; n])
    }

    /// Number of agents covered by this profile.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` if the profile covers no agents.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Strategy played by `agent`.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn strategy_of(&self, agent: Agent) -> Strategy {
        self.0[agent]
    }

    /// All strategies as a slice.
    pub fn strategies(&self) -> &[Strategy] {
        &self.0
    }

    /// The paper's `change(Si, si, i)`: a copy of the profile in which agent
    /// `agent` plays `strategy` instead.
    ///
    /// # Panics
    ///
    /// Panics if `agent` is out of range.
    pub fn with_strategy(&self, agent: Agent, strategy: Strategy) -> StrategyProfile {
        let mut out = self.0.clone();
        out[agent] = strategy;
        StrategyProfile(out)
    }

    /// Checks Fig. 2's `isStrat(n, TSi, Si)`: the profile has the right arity
    /// and every strategy index is within its agent's strategy set.
    pub fn is_valid_for(&self, strategy_counts: &[usize]) -> bool {
        self.0.len() == strategy_counts.len()
            && self.0.iter().zip(strategy_counts).all(|(&s, &c)| s < c)
    }
}

impl fmt::Display for StrategyProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for StrategyProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Vec<Strategy>> for StrategyProfile {
    fn from(v: Vec<Strategy>) -> StrategyProfile {
        StrategyProfile::new(v)
    }
}

impl From<&[Strategy]> for StrategyProfile {
    fn from(v: &[Strategy]) -> StrategyProfile {
        StrategyProfile::new(v.to_vec())
    }
}

/// Iterator over every pure strategy profile of a game (odometer order).
///
/// This realizes Fig. 2's `allStrat` enumeration: the sequence visits each
/// valid profile exactly once.
///
/// # Examples
///
/// ```
/// use ra_games::ProfileIter;
///
/// let all: Vec<_> = ProfileIter::new(vec![2, 3]).collect();
/// assert_eq!(all.len(), 6);
/// assert_eq!(all[0].strategies(), &[0, 0]);
/// assert_eq!(all[5].strategies(), &[1, 2]);
/// ```
#[derive(Clone, Debug)]
pub struct ProfileIter {
    counts: Vec<usize>,
    current: Option<Vec<Strategy>>,
}

impl ProfileIter {
    /// Creates an iterator over all profiles for the given per-agent
    /// strategy counts. Empty if any agent has zero strategies.
    pub fn new(counts: Vec<usize>) -> ProfileIter {
        let current = if counts.contains(&0) {
            None
        } else {
            Some(vec![0; counts.len()])
        };
        ProfileIter { counts, current }
    }

    /// Total number of profiles this iterator will yield.
    pub fn total(&self) -> u128 {
        if self.counts.contains(&0) {
            0
        } else {
            self.counts.iter().map(|&c| c as u128).product()
        }
    }
}

impl Iterator for ProfileIter {
    type Item = StrategyProfile;

    fn next(&mut self) -> Option<StrategyProfile> {
        let current = self.current.as_mut()?;
        let out = StrategyProfile::new(current.clone());
        // Odometer increment, least-significant agent first. When every
        // position wraps (including the zero-agent case), the iterator ends.
        let mut i = 0;
        let mut exhausted = false;
        loop {
            if i == current.len() {
                exhausted = true;
                break;
            }
            current[i] += 1;
            if current[i] < self.counts[i] {
                break;
            }
            current[i] = 0;
            i += 1;
        }
        if exhausted {
            self.current = None;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn change_matches_paper_semantics() {
        let s = StrategyProfile::new(vec![1, 1, 1]);
        let t = s.with_strategy(2, 0);
        assert_eq!(t, StrategyProfile::new(vec![1, 1, 0]));
        assert_ne!(s, t);
    }

    #[test]
    fn validity_check() {
        let counts = [2, 3];
        assert!(StrategyProfile::new(vec![1, 2]).is_valid_for(&counts));
        assert!(!StrategyProfile::new(vec![2, 0]).is_valid_for(&counts));
        assert!(!StrategyProfile::new(vec![0]).is_valid_for(&counts));
        assert!(!StrategyProfile::new(vec![0, 0, 0]).is_valid_for(&counts));
    }

    #[test]
    fn enumeration_is_exhaustive_and_unique() {
        let iter = ProfileIter::new(vec![2, 3, 2]);
        assert_eq!(iter.total(), 12);
        let all: Vec<_> = iter.collect();
        assert_eq!(all.len(), 12);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 12, "no duplicates");
        for p in &all {
            assert!(p.is_valid_for(&[2, 3, 2]));
        }
    }

    #[test]
    fn zero_strategy_agent_yields_nothing() {
        let mut iter = ProfileIter::new(vec![2, 0]);
        assert_eq!(iter.total(), 0);
        assert!(iter.next().is_none());
    }

    #[test]
    fn zero_agent_game_has_one_empty_profile() {
        let all: Vec<_> = ProfileIter::new(vec![]).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
    }

    #[test]
    fn display_formats() {
        let s = StrategyProfile::new(vec![0, 2]);
        assert_eq!(format!("{s}"), "(0, 2)");
        assert_eq!(format!("{s:?}"), "(0, 2)");
    }
}
