//! Seeded random game generators for tests and benchmarks.
//!
//! The benchmark harness compares inventor-side equilibrium *computation*
//! against agent-side *verification* on the same instances; these generators
//! produce the instances deterministically from a seed so that every
//! experiment in EXPERIMENTS.md is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ra_exact::{Matrix, Rational};

use crate::bimatrix::BimatrixGame;
use crate::strategic::StrategicGame;

/// Deterministic generator of random games.
///
/// # Examples
///
/// ```
/// use ra_games::GameGenerator;
///
/// let mut g1 = GameGenerator::seeded(42);
/// let mut g2 = GameGenerator::seeded(42);
/// let a = g1.bimatrix(3, 3, -10..=10);
/// let b = g2.bimatrix(3, 3, -10..=10);
/// assert_eq!(a.payoff_a(), b.payoff_a(), "same seed, same game");
/// ```
#[derive(Debug)]
pub struct GameGenerator {
    rng: StdRng,
}

impl GameGenerator {
    /// Creates a generator from a fixed seed.
    pub fn seeded(seed: u64) -> GameGenerator {
        GameGenerator {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Random bimatrix game with integer payoffs drawn uniformly from
    /// `payoff_range`.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0` or the range is empty.
    pub fn bimatrix(
        &mut self,
        rows: usize,
        cols: usize,
        payoff_range: std::ops::RangeInclusive<i64>,
    ) -> BimatrixGame {
        assert!(rows > 0 && cols > 0, "empty bimatrix game");
        let mut draw =
            |_: usize, _: usize| Rational::from(self.rng.random_range(payoff_range.clone()));
        let a = Matrix::from_fn(rows, cols, &mut draw);
        let b = Matrix::from_fn(rows, cols, &mut draw);
        BimatrixGame::new(a, b)
    }

    /// Random zero-sum bimatrix game (`B = −A`).
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0 || cols == 0` or the range is empty.
    pub fn zero_sum(
        &mut self,
        rows: usize,
        cols: usize,
        payoff_range: std::ops::RangeInclusive<i64>,
    ) -> BimatrixGame {
        assert!(rows > 0 && cols > 0, "empty bimatrix game");
        let a = Matrix::from_fn(rows, cols, |_, _| {
            Rational::from(self.rng.random_range(payoff_range.clone()))
        });
        let b = Matrix::from_fn(rows, cols, |i, j| -&a[(i, j)]);
        BimatrixGame::new(a, b)
    }

    /// Random `n`-agent strategic game with the given per-agent strategy
    /// counts and integer payoffs from `payoff_range`.
    ///
    /// # Panics
    ///
    /// Panics if any strategy count is zero or the profile space is huge.
    pub fn strategic(
        &mut self,
        strategy_counts: Vec<usize>,
        payoff_range: std::ops::RangeInclusive<i64>,
    ) -> StrategicGame {
        assert!(
            strategy_counts.iter().all(|&c| c > 0),
            "zero-strategy agent"
        );
        let n = strategy_counts.len();
        StrategicGame::from_payoff_fn(strategy_counts, |_| {
            (0..n)
                .map(|_| Rational::from(self.rng.random_range(payoff_range.clone())))
                .collect()
        })
    }

    /// A random bimatrix game that is *guaranteed* to contain the planted
    /// pure equilibrium `(row, col)` (payoffs at the planted cell are lifted
    /// above their row/column competitors).
    ///
    /// Useful for soundness fuzzing: the inventor's claimed profile is known
    /// in advance, independent of any solver.
    pub fn bimatrix_with_planted_pure(
        &mut self,
        rows: usize,
        cols: usize,
        planted: (usize, usize),
    ) -> BimatrixGame {
        assert!(
            planted.0 < rows && planted.1 < cols,
            "planted cell out of range"
        );
        let mut game = self.bimatrix(rows, cols, -50..=50);
        let bump = Rational::from(101);
        let mut a_rows: Vec<Vec<Rational>> = (0..rows)
            .map(|i| (0..cols).map(|j| game.a(i, j).clone()).collect())
            .collect();
        let mut b_rows: Vec<Vec<Rational>> = (0..rows)
            .map(|i| (0..cols).map(|j| game.b(i, j).clone()).collect())
            .collect();
        a_rows[planted.0][planted.1] = bump.clone();
        b_rows[planted.0][planted.1] = bump;
        game = BimatrixGame::new(Matrix::from_rows(a_rows), Matrix::from_rows(b_rows));
        game
    }

    /// Uniform random draw from a range (exposed so experiment harnesses can
    /// share the generator's seeded stream).
    pub fn draw_i64(&mut self, range: std::ops::RangeInclusive<i64>) -> i64 {
        self.rng.random_range(range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bimatrix::{MixedProfile, MixedStrategy};

    #[test]
    fn determinism() {
        let g1 = GameGenerator::seeded(7).strategic(vec![2, 3], -5..=5);
        let g2 = GameGenerator::seeded(7).strategic(vec![2, 3], -5..=5);
        for p in g1.profiles() {
            assert_eq!(g1.payoffs(&p), g2.payoffs(&p));
        }
    }

    #[test]
    fn zero_sum_is_zero_sum() {
        let g = GameGenerator::seeded(1).zero_sum(4, 5, -9..=9);
        assert!(g.is_zero_sum());
    }

    #[test]
    fn planted_equilibrium_is_nash() {
        for seed in 0..20 {
            let mut generator = GameGenerator::seeded(seed);
            let g = generator.bimatrix_with_planted_pure(4, 4, (2, 1));
            let profile = MixedProfile {
                row: MixedStrategy::pure(4, 2),
                col: MixedStrategy::pure(4, 1),
            };
            assert!(g.is_nash(&profile), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = GameGenerator::seeded(1).bimatrix(3, 3, -100..=100);
        let b = GameGenerator::seeded(2).bimatrix(3, 3, -100..=100);
        assert_ne!(a.payoff_a(), b.payoff_a());
    }
}
