//! Strategic-form (normal-form) games.
//!
//! Implements §2 of the paper: a game `⟨N, A = (Ai), U = (ui)⟩` with a finite
//! agent set, finite strategy sets and rational-valued utility functions,
//! together with the pure-Nash-equilibrium machinery of Fig. 2:
//! `isNash`, `isMaxNash`, the `≥u` partial order on profiles (`leStrat`) and
//! profile incomparability (`noComp`).

use std::fmt;

use ra_exact::Rational;

use crate::profile::{Agent, ProfileIter, Strategy, StrategyProfile};

/// A finite strategic-form game with rational payoffs.
///
/// Payoffs are stored densely: one vector of per-agent utilities for every
/// pure strategy profile, indexed in the same odometer order that
/// [`ProfileIter`] produces.
///
/// # Examples
///
/// ```
/// use ra_games::StrategicGame;
/// use ra_exact::Rational;
///
/// // Prisoner's dilemma: strategy 0 = cooperate, 1 = defect.
/// let g = StrategicGame::from_payoff_fn(vec![2, 2], |profile| {
///     let table = [[(-1, -1), (-3, 0)], [(0, -3), (-2, -2)]];
///     let (a, b) = table[profile.strategy_of(0)][profile.strategy_of(1)];
///     vec![Rational::from(a), Rational::from(b)]
/// });
/// let dd = vec![1, 1].into();
/// assert!(g.is_pure_nash(&dd));
/// assert_eq!(g.pure_nash_equilibria(), vec![dd]);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct StrategicGame {
    strategy_counts: Vec<usize>,
    /// `payoffs[flat_profile_index][agent]`.
    payoffs: Vec<Vec<Rational>>,
}

impl StrategicGame {
    /// Builds a game by evaluating `payoff` on every pure profile.
    ///
    /// `payoff` must return one utility per agent.
    ///
    /// # Panics
    ///
    /// Panics if `payoff` returns a vector whose length differs from the
    /// number of agents, or if the profile space is astronomically large
    /// (greater than `2^32` profiles).
    pub fn from_payoff_fn(
        strategy_counts: Vec<usize>,
        mut payoff: impl FnMut(&StrategyProfile) -> Vec<Rational>,
    ) -> StrategicGame {
        let total = ProfileIter::new(strategy_counts.clone()).total();
        assert!(total <= 1 << 32, "profile space too large to materialize");
        let n = strategy_counts.len();
        let payoffs = ProfileIter::new(strategy_counts.clone())
            .map(|p| {
                let u = payoff(&p);
                assert_eq!(u.len(), n, "payoff function arity mismatch");
                u
            })
            .collect();
        StrategicGame {
            strategy_counts,
            payoffs,
        }
    }

    /// Builds a two-agent game from payoff tables (`a[i][j]`, `b[i][j]`).
    ///
    /// # Panics
    ///
    /// Panics if the tables are ragged or of different shapes.
    pub fn from_tables(a: &[Vec<Rational>], b: &[Vec<Rational>]) -> StrategicGame {
        let rows = a.len();
        let cols = a.first().map_or(0, Vec::len);
        assert_eq!(rows, b.len(), "payoff tables must have equal shape");
        assert!(
            a.iter().chain(b.iter()).all(|r| r.len() == cols),
            "payoff tables must be rectangular and equal"
        );
        StrategicGame::from_payoff_fn(vec![rows, cols], |p| {
            let (i, j) = (p.strategy_of(0), p.strategy_of(1));
            vec![a[i][j].clone(), b[i][j].clone()]
        })
    }

    /// Number of agents `n = |N|`.
    pub fn num_agents(&self) -> usize {
        self.strategy_counts.len()
    }

    /// Per-agent strategy counts (Fig. 2's `TSi`).
    pub fn strategy_counts(&self) -> &[usize] {
        &self.strategy_counts
    }

    /// Number of pure strategy profiles.
    pub fn num_profiles(&self) -> usize {
        self.payoffs.len()
    }

    /// Iterator over all pure strategy profiles.
    pub fn profiles(&self) -> ProfileIter {
        ProfileIter::new(self.strategy_counts.clone())
    }

    /// Every profile's per-agent payoff vector, in
    /// [`profiles`](StrategicGame::profiles) (odometer) order — the dense
    /// storage order. Equivalent to calling
    /// [`payoffs`](StrategicGame::payoffs) on each profile of
    /// [`profiles`](StrategicGame::profiles) in turn, without
    /// materializing or re-validating any profile.
    pub fn payoff_rows(&self) -> impl Iterator<Item = &[Rational]> {
        self.payoffs.iter().map(Vec::as_slice)
    }

    fn flat_index(&self, profile: &StrategyProfile) -> usize {
        debug_assert!(profile.is_valid_for(&self.strategy_counts));
        let mut idx = 0usize;
        let mut stride = 1usize;
        for (agent, &count) in self.strategy_counts.iter().enumerate() {
            idx += profile.strategy_of(agent) * stride;
            stride *= count;
        }
        idx
    }

    /// Utility `u_i(s)` of `agent` under `profile` (Fig. 2's `u(i, Si)`).
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid for this game.
    pub fn payoff(&self, agent: Agent, profile: &StrategyProfile) -> &Rational {
        assert!(
            profile.is_valid_for(&self.strategy_counts),
            "profile invalid for game"
        );
        &self.payoffs[self.flat_index(profile)][agent]
    }

    /// All agents' utilities under `profile`.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid for this game.
    pub fn payoffs(&self, profile: &StrategyProfile) -> &[Rational] {
        assert!(
            profile.is_valid_for(&self.strategy_counts),
            "profile invalid for game"
        );
        &self.payoffs[self.flat_index(profile)]
    }

    /// Fig. 2's `isNash(n, u, Si, TSi)`: no agent gains by a unilateral
    /// deviation.
    ///
    /// Returns `false` (rather than panicking) for profiles that fail
    /// `isStrat`, mirroring the predicate in the proof scheme.
    pub fn is_pure_nash(&self, profile: &StrategyProfile) -> bool {
        if !profile.is_valid_for(&self.strategy_counts) {
            return false;
        }
        self.improving_deviation(profile).is_none()
    }

    /// Finds a unilateral improving deviation `(agent, strategy)` if one
    /// exists — the *counterexample witness* used by §3 certificates for
    /// non-equilibrium profiles.
    pub fn improving_deviation(&self, profile: &StrategyProfile) -> Option<(Agent, Strategy)> {
        let base_idx = self.flat_index(profile);
        for agent in 0..self.num_agents() {
            let current = &self.payoffs[base_idx][agent];
            for s in 0..self.strategy_counts[agent] {
                if s == profile.strategy_of(agent) {
                    continue;
                }
                let deviated = profile.with_strategy(agent, s);
                if self.payoff(agent, &deviated) > current {
                    return Some((agent, s));
                }
            }
        }
        None
    }

    /// Best responses of `agent` against the others' strategies in `profile`
    /// (the strategy of `agent` inside `profile` is ignored).
    pub fn best_responses(&self, agent: Agent, profile: &StrategyProfile) -> Vec<Strategy> {
        let mut best: Option<&Rational> = None;
        let mut out = Vec::new();
        for s in 0..self.strategy_counts[agent] {
            let u = self.payoff(agent, &profile.with_strategy(agent, s));
            match best {
                Some(b) if u < b => {}
                Some(b) if u == b => out.push(s),
                _ => {
                    best = Some(u);
                    out = vec![s];
                }
            }
        }
        // Second pass to collect all maximizers exactly.
        if let Some(b) = best {
            let b = b.clone();
            out = (0..self.strategy_counts[agent])
                .filter(|&s| *self.payoff(agent, &profile.with_strategy(agent, s)) == b)
                .collect();
        }
        out
    }

    /// All pure Nash equilibria, by exhaustive enumeration.
    ///
    /// This is the *inventor-side* intractable computation of §3 — cost grows
    /// with the full profile space. Verification of a claimed equilibrium via
    /// [`StrategicGame::is_pure_nash`] touches only `Σ_i |A_i|` profiles.
    pub fn pure_nash_equilibria(&self) -> Vec<StrategyProfile> {
        self.profiles().filter(|p| self.is_pure_nash(p)).collect()
    }

    /// Fig. 2's `leStrat(n, u, Si1, Si2)`: `s1 ≤u s2`, i.e. every agent
    /// weakly prefers `s2`.
    pub fn profile_le(&self, s1: &StrategyProfile, s2: &StrategyProfile) -> bool {
        (0..self.num_agents()).all(|i| self.payoff(i, s1) <= self.payoff(i, s2))
    }

    /// Fig. 2's `noComp`: the profiles are incomparable under `≤u`
    /// (some agent strictly prefers each side).
    pub fn profiles_incomparable(&self, s1: &StrategyProfile, s2: &StrategyProfile) -> bool {
        !self.profile_le(s1, s2) && !self.profile_le(s2, s1)
    }

    /// Fig. 2's `isMaxNash`: `profile` is a Nash equilibrium and no other
    /// Nash equilibrium is strictly greater under `≥u`.
    pub fn is_maximal_nash(&self, profile: &StrategyProfile) -> bool {
        if !self.is_pure_nash(profile) {
            return false;
        }
        self.pure_nash_equilibria().iter().all(|other| {
            other == profile || !self.profile_le(profile, other) || self.profile_le(other, profile)
        })
    }

    /// Minimal-equilibrium variant (footnote 1 of the paper).
    pub fn is_minimal_nash(&self, profile: &StrategyProfile) -> bool {
        if !self.is_pure_nash(profile) {
            return false;
        }
        self.pure_nash_equilibria().iter().all(|other| {
            other == profile || !self.profile_le(other, profile) || self.profile_le(profile, other)
        })
    }
}

impl fmt::Debug for StrategicGame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "StrategicGame({} agents, strategy counts {:?}, {} profiles)",
            self.num_agents(),
            self.strategy_counts,
            self.num_profiles()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rational {
        Rational::from(v)
    }

    /// Prisoner's dilemma; unique PNE at (defect, defect).
    fn prisoners_dilemma() -> StrategicGame {
        StrategicGame::from_tables(
            &[vec![r(-1), r(-3)], vec![r(0), r(-2)]],
            &[vec![r(-1), r(0)], vec![r(-3), r(-2)]],
        )
    }

    /// Matching pennies; no PNE.
    fn matching_pennies() -> StrategicGame {
        StrategicGame::from_tables(
            &[vec![r(1), r(-1)], vec![r(-1), r(1)]],
            &[vec![r(-1), r(1)], vec![r(1), r(-1)]],
        )
    }

    #[test]
    fn payoff_lookup() {
        let g = prisoners_dilemma();
        assert_eq!(*g.payoff(0, &vec![0, 1].into()), r(-3));
        assert_eq!(*g.payoff(1, &vec![0, 1].into()), r(0));
        assert_eq!(g.payoffs(&vec![1, 1].into()), &[r(-2), r(-2)]);
    }

    #[test]
    #[should_panic(expected = "profile invalid")]
    fn invalid_profile_panics_on_payoff() {
        let g = prisoners_dilemma();
        let _ = g.payoff(0, &vec![2, 0].into());
    }

    #[test]
    fn nash_detection() {
        let g = prisoners_dilemma();
        assert!(g.is_pure_nash(&vec![1, 1].into()));
        assert!(!g.is_pure_nash(&vec![0, 0].into()));
        assert_eq!(
            g.pure_nash_equilibria(),
            vec![StrategyProfile::new(vec![1, 1])]
        );
        assert!(matching_pennies().pure_nash_equilibria().is_empty());
    }

    #[test]
    fn invalid_profile_is_not_nash() {
        let g = prisoners_dilemma();
        assert!(!g.is_pure_nash(&vec![5, 5].into()));
    }

    #[test]
    fn improving_deviation_is_sound() {
        let g = prisoners_dilemma();
        let p: StrategyProfile = vec![0, 0].into();
        let (agent, s) = g.improving_deviation(&p).expect("not an equilibrium");
        assert!(g.payoff(agent, &p.with_strategy(agent, s)) > g.payoff(agent, &p));
    }

    #[test]
    fn best_responses_collects_ties() {
        // Agent 0 indifferent between both strategies.
        let g = StrategicGame::from_tables(&[vec![r(1)], vec![r(1)]], &[vec![r(0)], vec![r(0)]]);
        assert_eq!(g.best_responses(0, &vec![0, 0].into()), vec![0, 1]);
    }

    #[test]
    fn profile_order_and_incomparability() {
        // Coordination game with Pareto-ranked equilibria.
        let g = StrategicGame::from_tables(
            &[vec![r(2), r(0)], vec![r(0), r(1)]],
            &[vec![r(2), r(0)], vec![r(0), r(1)]],
        );
        let top: StrategyProfile = vec![0, 0].into();
        let bottom: StrategyProfile = vec![1, 1].into();
        assert!(g.profile_le(&bottom, &top));
        assert!(!g.profile_le(&top, &bottom));
        assert!(!g.profiles_incomparable(&top, &bottom));
        assert!(g.is_maximal_nash(&top));
        assert!(!g.is_maximal_nash(&bottom));
        assert!(g.is_minimal_nash(&bottom));
        assert!(!g.is_minimal_nash(&top));
    }

    #[test]
    fn incomparable_profiles_detected() {
        let g = StrategicGame::from_tables(
            &[vec![r(1), r(0)], vec![r(0), r(0)]],
            &[vec![r(0), r(0)], vec![r(1), r(0)]],
        );
        // (0,0) favours agent 0; (1,0) favours agent 1.
        assert!(g.profiles_incomparable(&vec![0, 0].into(), &vec![1, 0].into()));
    }

    #[test]
    fn three_agent_game() {
        // Majority coordination: utility 1 to everyone if all agree.
        let g = StrategicGame::from_payoff_fn(vec![2, 2, 2], |p| {
            let all_same = p.strategies().iter().all(|&s| s == p.strategy_of(0));
            vec![r(all_same as i64); 3]
        });
        let eqs = g.pure_nash_equilibria();
        assert!(eqs.contains(&vec![0, 0, 0].into()));
        assert!(eqs.contains(&vec![1, 1, 1].into()));
        // Profiles with a lone dissenter: the dissenter cannot improve alone
        // (still not unanimous after switching? it becomes unanimous — so
        // those are NOT equilibria), but 2-1 splits where the majority
        // member's switch can't reach unanimity are.
        assert!(!g.is_pure_nash(&vec![0, 0, 1].into()));
    }

    #[test]
    fn from_tables_rejects_ragged() {
        let result = std::panic::catch_unwind(|| {
            StrategicGame::from_tables(&[vec![r(1), r(2)], vec![r(3)]], &[vec![r(1), r(2)]])
        });
        assert!(result.is_err());
    }
}
