//! Named example games used across the paper, the tests and the examples.

use ra_exact::Rational;

use crate::bimatrix::BimatrixGame;
use crate::strategic::StrategicGame;

/// The bimatrix game of Fig. 5 of the paper:
///
/// ```text
///        C     D
///  A   1,1   1,1
///  B   0,1   2,0
/// ```
///
/// Its equilibria make Remark 2's point: when the prover tells the row agent
/// only "your support is {A}, your probabilities are (1, 0), λ₁ = λ₂ = 1",
/// the row agent cannot reconstruct the column agent's strategy — any
/// `(q_C, q_D)` with `q_D ≤ 1/2` completes an equilibrium.
pub fn fig5_game() -> BimatrixGame {
    BimatrixGame::from_i64_tables(&[&[1, 1], &[0, 2]], &[&[1, 1], &[1, 0]])
}

/// Prisoner's dilemma (strategy 0 = cooperate, 1 = defect); the unique
/// equilibrium (1, 1) is strictly dominant.
pub fn prisoners_dilemma() -> BimatrixGame {
    BimatrixGame::from_i64_tables(&[&[-1, -3], &[0, -2]], &[&[-1, 0], &[-3, -2]])
}

/// Matching pennies; zero-sum, no pure equilibrium, unique mixed equilibrium
/// at uniform play.
pub fn matching_pennies() -> BimatrixGame {
    BimatrixGame::from_i64_tables(&[&[1, -1], &[-1, 1]], &[&[-1, 1], &[1, -1]])
}

/// Battle of the sexes; two pure equilibria plus a mixed one
/// (x = (2/3, 1/3), y = (1/3, 2/3)).
pub fn battle_of_the_sexes() -> BimatrixGame {
    BimatrixGame::from_i64_tables(&[&[2, 0], &[0, 1]], &[&[1, 0], &[0, 2]])
}

/// Rock-paper-scissors; zero-sum, unique mixed equilibrium at uniform play.
pub fn rock_paper_scissors() -> BimatrixGame {
    BimatrixGame::from_i64_tables(
        &[&[0, -1, 1], &[1, 0, -1], &[-1, 1, 0]],
        &[&[0, 1, -1], &[-1, 0, 1], &[1, -1, 0]],
    )
}

/// A pure coordination game with `k` Pareto-ranked equilibria: both agents
/// receive `i + 1` when they coordinate on strategy `i`, zero otherwise.
///
/// The maximal Nash equilibrium (Fig. 2's `isMaxNash`) is coordination on
/// strategy `k − 1`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn coordination_game(k: usize) -> StrategicGame {
    assert!(k > 0, "coordination game needs at least one strategy");
    StrategicGame::from_payoff_fn(vec![k, k], |p| {
        let (i, j) = (p.strategy_of(0), p.strategy_of(1));
        let v = if i == j {
            Rational::from((i + 1) as i64)
        } else {
            Rational::zero()
        };
        vec![v.clone(), v]
    })
}

/// The `n`-player "stag hunt": strategy 1 (stag) pays `3` if *everyone*
/// hunts stag, `0` otherwise; strategy 0 (hare) always pays `1`.
/// Two pure symmetric equilibria: all-stag (payoff-dominant / maximal) and
/// all-hare (risk-dominant).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn stag_hunt(n: usize) -> StrategicGame {
    assert!(n > 0, "stag hunt needs at least one agent");
    StrategicGame::from_payoff_fn(vec![2; n], |p| {
        let all_stag = p.strategies().iter().all(|&s| s == 1);
        (0..n)
            .map(|i| match p.strategy_of(i) {
                0 => Rational::one(),
                _ if all_stag => Rational::from(3),
                _ => Rational::zero(),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bimatrix::{MixedProfile, MixedStrategy};
    use ra_exact::rat;

    #[test]
    fn fig5_equilibrium_values() {
        let g = fig5_game();
        let profile = MixedProfile {
            row: MixedStrategy::pure(2, 0),
            col: MixedStrategy::pure(2, 0),
        };
        assert!(g.is_nash(&profile));
        assert_eq!(g.equilibrium_values(&profile), (rat(1, 1), rat(1, 1)));
    }

    #[test]
    fn battle_of_sexes_mixed_equilibrium() {
        let g = battle_of_the_sexes();
        let profile = MixedProfile {
            row: MixedStrategy::try_new(vec![rat(2, 3), rat(1, 3)]).unwrap(),
            col: MixedStrategy::try_new(vec![rat(1, 3), rat(2, 3)]).unwrap(),
        };
        assert!(g.is_nash(&profile));
        assert_eq!(g.equilibrium_values(&profile), (rat(2, 3), rat(2, 3)));
        // Pure coordinated profiles are also equilibria.
        for i in 0..2 {
            let pure = MixedProfile {
                row: MixedStrategy::pure(2, i),
                col: MixedStrategy::pure(2, i),
            };
            assert!(g.is_nash(&pure));
        }
    }

    #[test]
    fn rps_uniform_is_unique_equilibrium_value() {
        let g = rock_paper_scissors();
        assert!(g.is_zero_sum());
        let profile = MixedProfile {
            row: MixedStrategy::uniform(3),
            col: MixedStrategy::uniform(3),
        };
        assert!(g.is_nash(&profile));
        assert_eq!(g.equilibrium_values(&profile), (rat(0, 1), rat(0, 1)));
        // No pure equilibrium exists.
        assert!(g.to_strategic().pure_nash_equilibria().is_empty());
    }

    #[test]
    fn coordination_maximal_equilibrium() {
        let g = coordination_game(3);
        let eqs = g.pure_nash_equilibria();
        assert_eq!(eqs.len(), 3);
        assert!(g.is_maximal_nash(&vec![2, 2].into()));
        assert!(!g.is_maximal_nash(&vec![0, 0].into()));
        assert!(g.is_minimal_nash(&vec![0, 0].into()));
    }

    #[test]
    fn stag_hunt_equilibria() {
        let g = stag_hunt(3);
        assert!(g.is_pure_nash(&vec![1, 1, 1].into()));
        assert!(g.is_pure_nash(&vec![0, 0, 0].into()));
        assert!(!g.is_pure_nash(&vec![1, 1, 0].into()));
        assert!(g.is_maximal_nash(&vec![1, 1, 1].into()));
        assert!(!g.is_maximal_nash(&vec![0, 0, 0].into()));
    }
}
