//! # ra-games — strategic-form game substrate
//!
//! Finite games with exact rational payoffs, following §2 and Fig. 2 of
//! *"Rationality Authority for Provable Rational Behavior"*:
//!
//! * [`StrategyProfile`] / [`ProfileIter`] — profiles and `allStrat`
//!   enumeration;
//! * [`StrategicGame`] — `⟨N, A, U⟩` with `isNash` / `isMaxNash` / `≤u`;
//! * [`BimatrixGame`] / [`MixedStrategy`] — the §4 two-agent setting with
//!   exact mixed-equilibrium checking;
//! * [`SymmetricBinaryGame`] — the §5 symmetric participation setting;
//! * [`dominates`] / [`dominant_strategy_equilibrium`] and the [`named`]
//!   example games.
//!
//! Everything here is *definition-level*: the expensive equilibrium solvers
//! live in `ra-solvers`, and certificates/verification in `ra-proofs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bimatrix;
mod dominance;
mod generators;
pub mod named;
mod profile;
mod strategic;
mod symmetric;

pub use bimatrix::{BimatrixGame, MixedProfile, MixedStrategy, MixedStrategyError};
pub use dominance::{
    dominant_strategies, dominant_strategy_equilibrium, dominates, is_dominant_strategy, Dominance,
};
pub use generators::GameGenerator;
pub use profile::{Agent, ProfileIter, Strategy, StrategyProfile};
pub use strategic::StrategicGame;
pub use symmetric::SymmetricBinaryGame;
