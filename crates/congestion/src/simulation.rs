//! The Fig. 7 experiment harness.
//!
//! Paper setup: 1000 agents, loads uniform in `[0, 1000]`, `m = 2..500`
//! equispeed parallel links. For each `m`, run many iterations; in each,
//! compare the final makespan when every agent follows the inventor's
//! statistics-informed advice against the greedy (least-loaded) strategy,
//! and report the percentage of iterations in which the advised assignment
//! is *strictly* better. The paper's chart rises from ~60% at tiny `m`
//! toward ~100% for large `m`, with isolated reversals (Remark 4).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::parallel::{greedy_assign, inventor_assign};

/// Configuration of a Fig. 7 run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Fig7Config {
    /// Number of agents per iteration (paper: 1000).
    pub num_agents: usize,
    /// Inclusive load range (paper: 0..=1000).
    pub load_range: (u64, u64),
    /// Link counts to sweep (paper: 2..=500).
    pub link_counts: Vec<usize>,
    /// Iterations per link count.
    pub iterations: usize,
    /// Base RNG seed; every (m, iteration) derives its own stream.
    pub seed: u64,
}

impl Fig7Config {
    /// The paper's exact parameters (1000 agents, `m = 2..500`). At 100
    /// iterations per point this takes a while; see [`Fig7Config::quick`]
    /// for a sparse sweep.
    pub fn paper() -> Fig7Config {
        Fig7Config {
            num_agents: 1000,
            load_range: (0, 1000),
            link_counts: (2..=500).collect(),
            iterations: 100,
            seed: 2011,
        }
    }

    /// A sparse sweep reproducing the curve's shape in seconds.
    pub fn quick() -> Fig7Config {
        Fig7Config {
            num_agents: 1000,
            load_range: (0, 1000),
            link_counts: vec![
                2, 5, 10, 25, 42, 92, 142, 192, 242, 292, 332, 342, 392, 442, 492,
            ],
            iterations: 100,
            seed: 2011,
        }
    }
}

/// One point of the Fig. 7 series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Fig7Point {
    /// Number of links `m`.
    pub m: usize,
    /// Percentage of iterations where the inventor's final makespan is
    /// strictly smaller than greedy's (the paper's y-axis).
    pub inventor_strictly_better_pct: f64,
    /// Percentage where greedy is strictly better (Remark 4's reversals).
    pub greedy_strictly_better_pct: f64,
    /// Percentage of exact ties.
    pub tie_pct: f64,
    /// Mean makespan ratio greedy / inventor across iterations.
    pub mean_makespan_ratio: f64,
}

/// Runs one Fig. 7 iteration; returns `(greedy makespan, inventor makespan)`.
pub fn fig7_iteration(
    num_agents: usize,
    load_range: (u64, u64),
    m: usize,
    rng: &mut StdRng,
) -> (u64, u64) {
    let loads: Vec<u64> = (0..num_agents)
        .map(|_| rng.random_range(load_range.0..=load_range.1))
        .collect();
    let greedy = greedy_assign(&loads, m).makespan();
    let inventor = inventor_assign(&loads, m).makespan();
    (greedy, inventor)
}

/// Runs the full experiment, one point per link count. With the default
/// `parallel` cargo feature the sweep is parallelised across link counts
/// with scoped threads (worker count scaled to the available
/// parallelism); built with `--no-default-features` it runs inline on the
/// calling thread. Every point is seeded independently, so the results
/// are identical either way.
pub fn run_fig7(config: &Fig7Config) -> Vec<Fig7Point> {
    #[cfg(feature = "parallel")]
    {
        let num_workers = std::thread::available_parallelism()
            .map_or(4, |n| n.get())
            .min(16);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results_cell: Vec<std::sync::Mutex<Option<Fig7Point>>> = config
            .link_counts
            .iter()
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..num_workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= config.link_counts.len() {
                        break;
                    }
                    let m = config.link_counts[idx];
                    *results_cell[idx].lock().expect("result lock poisoned") =
                        Some(run_point(config, m));
                });
            }
        });
        results_cell
            .into_iter()
            .map(|cell| {
                cell.into_inner()
                    .expect("result lock poisoned")
                    .expect("every point computed")
            })
            .collect()
    }
    #[cfg(not(feature = "parallel"))]
    {
        config
            .link_counts
            .iter()
            .map(|&m| run_point(config, m))
            .collect()
    }
}

fn run_point(config: &Fig7Config, m: usize) -> Fig7Point {
    let mut inventor_wins = 0usize;
    let mut greedy_wins = 0usize;
    let mut ties = 0usize;
    let mut ratio_sum = 0.0f64;
    for iter in 0..config.iterations {
        // Independent, reproducible stream per (m, iteration).
        let mut rng = StdRng::seed_from_u64(
            config.seed ^ (m as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ iter as u64,
        );
        let (greedy, inventor) = fig7_iteration(config.num_agents, config.load_range, m, &mut rng);
        match inventor.cmp(&greedy) {
            std::cmp::Ordering::Less => inventor_wins += 1,
            std::cmp::Ordering::Greater => greedy_wins += 1,
            std::cmp::Ordering::Equal => ties += 1,
        }
        ratio_sum += greedy as f64 / inventor.max(1) as f64;
    }
    let total = config.iterations as f64;
    Fig7Point {
        m,
        inventor_strictly_better_pct: 100.0 * inventor_wins as f64 / total,
        greedy_strictly_better_pct: 100.0 * greedy_wins as f64 / total,
        tie_pct: 100.0 * ties as f64 / total,
        mean_makespan_ratio: ratio_sum / total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(5);
        let mut b = StdRng::seed_from_u64(5);
        assert_eq!(
            fig7_iteration(100, (0, 1000), 10, &mut a),
            fig7_iteration(100, (0, 1000), 10, &mut b)
        );
    }

    #[test]
    fn small_run_shape() {
        // Scaled-down experiment: the inventor should already win most
        // iterations at moderate m (the paper's qualitative claim).
        let config = Fig7Config {
            num_agents: 200,
            load_range: (0, 1000),
            link_counts: vec![2, 40],
            iterations: 30,
            seed: 7,
        };
        let points = run_fig7(&config);
        assert_eq!(points.len(), 2);
        for p in &points {
            let total = p.inventor_strictly_better_pct + p.greedy_strictly_better_pct + p.tie_pct;
            assert!((total - 100.0).abs() < 1e-9);
        }
        let at_m40 = points.iter().find(|p| p.m == 40).unwrap();
        assert!(
            at_m40.inventor_strictly_better_pct >= 60.0,
            "inventor wins {}% at m = 40",
            at_m40.inventor_strictly_better_pct
        );
        assert!(at_m40.mean_makespan_ratio >= 1.0);
    }

    #[test]
    fn run_is_reproducible() {
        let config = Fig7Config {
            num_agents: 100,
            load_range: (0, 1000),
            link_counts: vec![5, 15],
            iterations: 10,
            seed: 99,
        };
        assert_eq!(run_fig7(&config), run_fig7(&config));
    }
}
