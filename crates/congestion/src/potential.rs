//! Rosenthal's potential for atomic unit-load congestion games.
//!
//! For unit loads, `Φ(π) = Σ_e Σ_{j=1}^{x_e} d_e(j)` decreases strictly
//! under every improving unilateral path change, which is why best-response
//! dynamics converge and why the offline version of the §6 game always has a
//! pure Nash equilibrium. The tests pin both facts down exactly.

use ra_exact::Rational;

use crate::graph::{ArcId, Network};
use crate::online::Configuration;

/// Rosenthal potential of a unit-load configuration:
/// `Φ = Σ_e Σ_{j=1}^{x_e} d_e(j)`.
///
/// # Panics
///
/// Panics if some arc load is not a non-negative integer (the potential is
/// defined for atomic unit-load games).
pub fn rosenthal_potential(network: &Network, config: &Configuration) -> Rational {
    let mut phi = Rational::zero();
    for aid in 0..network.num_arcs() {
        let load = &config.arc_loads[aid];
        assert!(
            load.is_integer() && !load.is_negative(),
            "Rosenthal potential needs non-negative integer arc loads"
        );
        let x = load.numer().to_u64().expect("small integer load") as i64;
        for j in 1..=x {
            phi += &network.arc(aid).delay.eval(&Rational::from(j));
        }
    }
    phi
}

/// One step of best-response dynamics on the *offline* game: if some agent
/// can strictly reduce its delay by re-routing, re-route it and return
/// `true`; otherwise the configuration is a pure Nash equilibrium.
///
/// `requests[i]` must describe agent `i`'s `(source, sink)`; unit loads.
pub fn best_response_step(
    network: &Network,
    config: &mut Configuration,
    requests: &[(usize, usize)],
) -> bool {
    let one = Rational::one();
    for (agent, &(source, sink)) in requests.iter().enumerate() {
        // Delay the agent currently experiences.
        let current = config.agent_delay(network, agent);
        // Best response: shortest path with the agent's own load removed.
        let mut loads = config.arc_loads.clone();
        for &aid in &config.paths[agent] {
            loads[aid] = &loads[aid] - &one;
        }
        let Some((path, delay)) = network.shortest_path(&loads, &one, source, sink) else {
            continue;
        };
        if delay < current {
            // Commit the move.
            for &aid in &config.paths[agent] {
                config.arc_loads[aid] = &config.arc_loads[aid] - &one;
            }
            for &aid in &path {
                config.arc_loads[aid] = &config.arc_loads[aid] + &one;
            }
            config.paths[agent] = path;
            return true;
        }
    }
    false
}

/// Runs best-response dynamics to convergence; returns the number of
/// improvement steps. Termination is guaranteed by the potential argument
/// (`max_steps` is a defensive bound).
///
/// # Panics
///
/// Panics if the dynamics fail to converge within `max_steps` — which would
/// disprove Rosenthal's theorem, i.e. indicate a bug.
pub fn best_response_dynamics_paths(
    network: &Network,
    config: &mut Configuration,
    requests: &[(usize, usize)],
    max_steps: usize,
) -> usize {
    for step in 0..max_steps {
        if !best_response_step(network, config, requests) {
            return step;
        }
    }
    panic!("best-response dynamics exceeded {max_steps} steps — potential argument violated");
}

/// Returns `true` if no agent can strictly improve by re-routing (pure Nash
/// equilibrium of the offline unit-load game).
pub fn is_path_equilibrium(
    network: &Network,
    config: &Configuration,
    requests: &[(usize, usize)],
) -> bool {
    let one = Rational::one();
    requests.iter().enumerate().all(|(agent, &(source, sink))| {
        let current = config.agent_delay(network, agent);
        let mut loads = config.arc_loads.clone();
        for &aid in &config.paths[agent] {
            loads[aid] = &loads[aid] - &one;
        }
        match network.shortest_path(&loads, &one, source, sink) {
            Some((_, best)) => best >= current,
            None => true,
        }
    })
}

/// Helper: commit explicit unit-load paths for a list of agents.
pub fn configuration_from_paths(network: &Network, paths: Vec<Vec<ArcId>>) -> Configuration {
    let mut config = Configuration::new(network);
    let one = Rational::one();
    for path in paths {
        config.commit(path, &one);
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::DelayFn;
    use crate::online::fig6_instance;
    use ra_exact::rat;

    #[test]
    fn potential_of_fig6() {
        // Each of the four identity arcs has load k: Φ = 4·(1+2+…+k).
        let fig = fig6_instance(3);
        let phi = rosenthal_potential(&fig.network, &fig.config);
        assert_eq!(phi, rat(4 * 6, 1));
    }

    #[test]
    fn potential_decreases_under_improvement() {
        // Put both unit agents on the same route; one should move off.
        let fig = fig6_instance(1);
        let network = fig.network;
        let paths = vec![vec![0, 1], vec![0, 1]];
        let mut config = configuration_from_paths(&network, paths);
        let requests = vec![(0, 3), (0, 3)];
        let before = rosenthal_potential(&network, &config);
        assert!(best_response_step(&network, &mut config, &requests));
        let after = rosenthal_potential(&network, &config);
        assert!(after < before, "potential strictly decreases");
    }

    #[test]
    fn dynamics_converge_to_equilibrium() {
        let fig = fig6_instance(2);
        let network = fig.network;
        // Six unit agents a→d all piled on the b-route.
        let paths = vec![vec![0, 1]; 6];
        let mut config = configuration_from_paths(&network, paths);
        let requests = vec![(0, 3); 6];
        let steps = best_response_dynamics_paths(&network, &mut config, &requests, 100);
        assert!(steps > 0);
        assert!(is_path_equilibrium(&network, &config, &requests));
        // Balanced split: 3 agents per route.
        assert_eq!(config.arc_loads[0], rat(3, 1));
        assert_eq!(config.arc_loads[2], rat(3, 1));
    }

    #[test]
    fn equilibrium_detection() {
        let fig = fig6_instance(1);
        let network = fig.network;
        let balanced = configuration_from_paths(&network, vec![vec![0, 1], vec![2, 3]]);
        assert!(is_path_equilibrium(&network, &balanced, &[(0, 3), (0, 3)]));
        let piled = configuration_from_paths(&network, vec![vec![0, 1], vec![0, 1]]);
        assert!(!is_path_equilibrium(&network, &piled, &[(0, 3), (0, 3)]));
    }

    #[test]
    fn potential_with_affine_delays() {
        let mut network = crate::graph::Network::new(2);
        network.add_arc(
            0,
            1,
            DelayFn::Affine {
                coeff: rat(2, 1),
                constant: rat(1, 1),
            },
        );
        let config = configuration_from_paths(&network, vec![vec![0], vec![0]]);
        // Φ = d(1) + d(2) = 3 + 5 = 8.
        assert_eq!(rosenthal_potential(&network, &config), rat(8, 1));
    }

    #[test]
    #[should_panic(expected = "integer arc loads")]
    fn fractional_loads_rejected() {
        let mut network = crate::graph::Network::new(2);
        network.add_arc(0, 1, DelayFn::Identity);
        let mut config = Configuration::new(&network);
        config.commit(vec![0], &rat(1, 2));
        let _ = rosenthal_potential(&network, &config);
    }
}
