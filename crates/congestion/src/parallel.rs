//! Parallel-links load balancing (§6, "Greedy Strategies for Parallel
//! Links").
//!
//! `m` identical (equispeed) links from `s` to `t`; agent `i` arrives with
//! load `w_i` and irrevocably picks a link. Two strategies compete:
//!
//! * **greedy** — take the least-loaded link at arrival (Lemma 2 gives the
//!   `(2 − 1/m)·OPT` makespan guarantee);
//! * **inventor advice** — compute a Nash (LPT) assignment of your own load
//!   plus the `n − i` expected future loads onto the current link loads, and
//!   take the link your load received.
//!
//! Loads are integers (the Fig. 7 workload draws uniformly from
//! `[0, 1000]`), so makespans are exact `u64`s and the greedy-vs-inventor
//! comparison has no floating-point ambiguity.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An assignment of a load sequence to links.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// Link chosen for each load, in input order.
    pub link_of: Vec<usize>,
    /// Final total load per link.
    pub link_loads: Vec<u64>,
}

impl Assignment {
    /// The makespan: maximum final link load.
    pub fn makespan(&self) -> u64 {
        self.link_loads.iter().copied().max().unwrap_or(0)
    }
}

/// Greedy online assignment: each load (in arrival order) goes to the
/// currently least-loaded link, ties to the lowest index.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn greedy_assign(loads: &[u64], m: usize) -> Assignment {
    assert!(m > 0, "need at least one link");
    let mut link_loads = vec![0u64; m];
    // Min-heap of (load, link index) — O(n log m).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..m).map(|j| Reverse((0u64, j))).collect();
    let mut link_of = Vec::with_capacity(loads.len());
    for &w in loads {
        let Reverse((load, j)) = heap.pop().expect("heap never empties");
        link_of.push(j);
        let new_load = load + w;
        link_loads[j] = new_load;
        heap.push(Reverse((new_load, j)));
    }
    Assignment {
        link_of,
        link_loads,
    }
}

/// Offline LPT (longest processing time) assignment: sort descending, then
/// greedy. The classic `(4/3 − 1/(3m))·OPT` heuristic; also the shape of the
/// inventor's equilibrium assignment.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn lpt_assign(loads: &[u64], m: usize) -> Assignment {
    assert!(m > 0, "need at least one link");
    let mut order: Vec<usize> = (0..loads.len()).collect();
    order.sort_by(|&a, &b| loads[b].cmp(&loads[a]).then(a.cmp(&b)));
    let mut link_loads = vec![0u64; m];
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..m).map(|j| Reverse((0u64, j))).collect();
    let mut link_of = vec![0usize; loads.len()];
    for idx in order {
        let Reverse((load, j)) = heap.pop().expect("heap never empties");
        link_of[idx] = j;
        let new_load = load + loads[idx];
        link_loads[j] = new_load;
        heap.push(Reverse((new_load, j)));
    }
    Assignment {
        link_of,
        link_loads,
    }
}

/// The inventor's advice for one arriving agent (§6): LPT-assign the agent's
/// own load plus `future_agents` copies of the expected future load onto the
/// current link loads, and return the link the agent's own load received.
///
/// Expected loads are fractional (a running average), so the internal
/// computation uses `f64`; the *decision* it produces is a link index, and
/// the final makespan comparison stays exact integer arithmetic.
///
/// # Panics
///
/// Panics if `current_loads` is empty.
pub fn inventor_suggested_link(
    current_loads: &[u64],
    own_load: u64,
    expected_future_load: f64,
    future_agents: usize,
) -> usize {
    assert!(!current_loads.is_empty(), "need at least one link");
    // LPT order: all loads ≥ expected go before the copies; the agent's own
    // load is placed at its sorted position. Equal values: own load first
    // (deterministic, matches `honest_online_advice` in ra-proofs).
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = current_loads
        .iter()
        .enumerate()
        .map(|(j, &l)| Reverse((l.saturating_mul(1 << 20), j)))
        .collect();
    // Scale to integer micro-units to keep the heap keys orderable without
    // float keys: 2^20 units per load unit.
    let scale = |v: f64| -> u64 { (v * (1u64 << 20) as f64).round() as u64 };
    let own_scaled = own_load << 20;
    let future_scaled = scale(expected_future_load);
    let mut items: Vec<(bool, u64)> = Vec::with_capacity(1 + future_agents);
    items.push((true, own_scaled));
    for _ in 0..future_agents {
        items.push((false, future_scaled));
    }
    // Greatest first; own load wins ties so its placement is deterministic.
    items.sort_by(|a, b| b.1.cmp(&a.1).then(b.0.cmp(&a.0)));
    for (is_own, w) in items {
        let Reverse((load, j)) = heap.pop().expect("heap never empties");
        if is_own {
            return j;
        }
        heap.push(Reverse((load + w, j)));
    }
    unreachable!("own load is always placed");
}

/// Runs the full §6 online process with every agent obeying the inventor
/// (`p = 1` in the paper's obedience model): the inventor maintains the
/// running average of observed loads and advises each arrival.
///
/// # Panics
///
/// Panics if `m == 0`.
pub fn inventor_assign(loads: &[u64], m: usize) -> Assignment {
    assert!(m > 0, "need at least one link");
    let n = loads.len();
    let mut link_loads = vec![0u64; m];
    let mut link_of = Vec::with_capacity(n);
    let mut observed_sum: u64 = 0;
    for (i, &w) in loads.iter().enumerate() {
        observed_sum += w;
        // Average of loads seen so far (w_1..w_i, including the arrival).
        let average = observed_sum as f64 / (i + 1) as f64;
        let remaining = n - i - 1;
        let link = inventor_suggested_link(&link_loads, w, average, remaining);
        link_of.push(link);
        link_loads[link] += w;
    }
    Assignment {
        link_of,
        link_loads,
    }
}

/// Mixed-obedience play (§6's model): each agent independently follows the
/// inventor's advice with probability `p`, otherwise plays greedy.
///
/// # Panics
///
/// Panics if `m == 0` or `p ∉ [0, 1]`.
pub fn mixed_obedience_assign(
    loads: &[u64],
    m: usize,
    p: f64,
    rng: &mut dyn rand::RngCore,
) -> Assignment {
    use rand::Rng;
    assert!(m > 0, "need at least one link");
    assert!((0.0..=1.0).contains(&p), "obedience probability in [0,1]");
    let n = loads.len();
    let mut link_loads = vec![0u64; m];
    let mut link_of = Vec::with_capacity(n);
    let mut observed_sum: u64 = 0;
    for (i, &w) in loads.iter().enumerate() {
        observed_sum += w;
        let link = if rng.random_bool(p) {
            let average = observed_sum as f64 / (i + 1) as f64;
            inventor_suggested_link(&link_loads, w, average, n - i - 1)
        } else {
            (0..m).min_by_key(|&j| (link_loads[j], j)).expect("m > 0")
        };
        link_of.push(link);
        link_loads[link] += w;
    }
    Assignment {
        link_of,
        link_loads,
    }
}

/// The standard lower bound on the optimum makespan:
/// `max(⌈Σw / m⌉, max w)`.
pub fn opt_makespan_lower_bound(loads: &[u64], m: usize) -> u64 {
    let total: u64 = loads.iter().sum();
    let avg_ceil = total.div_ceil(m as u64);
    let max_load = loads.iter().copied().max().unwrap_or(0);
    avg_ceil.max(max_load)
}

/// Exact optimum makespan by branch-and-bound — exponential, for small
/// instances (tests of Lemma 2's tightness).
///
/// # Panics
///
/// Panics if `m == 0` or the instance is large (`loads.len() > 16`).
pub fn opt_makespan_exact(loads: &[u64], m: usize) -> u64 {
    assert!(m > 0, "need at least one link");
    assert!(loads.len() <= 16, "exact OPT limited to 16 loads");
    let mut sorted: Vec<u64> = loads.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut best = lpt_assign(loads, m).makespan();
    let lower = opt_makespan_lower_bound(loads, m);
    let mut links = vec![0u64; m];
    fn rec(sorted: &[u64], idx: usize, links: &mut Vec<u64>, best: &mut u64, lower: u64) {
        if *best == lower {
            return; // provably optimal already
        }
        if idx == sorted.len() {
            let mk = links.iter().copied().max().unwrap_or(0);
            if mk < *best {
                *best = mk;
            }
            return;
        }
        let w = sorted[idx];
        let mut seen = std::collections::HashSet::new();
        for j in 0..links.len() {
            if !seen.insert(links[j]) {
                continue; // symmetric branch
            }
            if links[j] + w >= *best {
                continue; // bound
            }
            links[j] += w;
            rec(sorted, idx + 1, links, best, lower);
            links[j] -= w;
        }
    }
    rec(&sorted, 0, &mut links, &mut best, lower);
    best
}

/// Checks Lemma 2: every greedy assignment satisfies
/// `makespan ≤ (2 − 1/m)·OPT`. Uses the exact OPT when feasible, otherwise
/// the lower bound (which only makes the check stricter on the greedy side
/// being *compared against a smaller denominator*, i.e. the inequality
/// `greedy ≤ (2 − 1/m)·lower_bound ≤ (2 − 1/m)·OPT` is the strong form).
pub fn greedy_satisfies_lemma2(loads: &[u64], m: usize) -> bool {
    let greedy = greedy_assign(loads, m).makespan();
    let opt = if loads.len() <= 14 {
        opt_makespan_exact(loads, m)
    } else {
        opt_makespan_lower_bound(loads, m)
    };
    // greedy ≤ (2 − 1/m)·opt  ⟺  greedy·m ≤ (2m − 1)·opt  (integers).
    (greedy as u128) * (m as u128) <= (2 * m as u128 - 1) * (opt as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn greedy_least_loaded() {
        let a = greedy_assign(&[4, 3, 2, 5], 2);
        // 4→link0, 3→link1, 2→link1 (3<4), 5→link0? loads (4,5): link0.
        assert_eq!(a.link_of, vec![0, 1, 1, 0]);
        assert_eq!(a.link_loads, vec![9, 5]);
        assert_eq!(a.makespan(), 9);
    }

    #[test]
    fn lpt_classic_example() {
        // LPT on {7,7,6,6,5,5} with 3 links: pairs to 12 each — wait:
        // 7,7,6 → links 0,1,2; then 6→link2? no: loads (7,7,6): 6 to link2
        // (6) → 12; 5 → link0/1 → 12; 5 → 12. Makespan 12 (optimal).
        let a = lpt_assign(&[7, 7, 6, 6, 5, 5], 3);
        assert_eq!(a.makespan(), 12);
        assert_eq!(opt_makespan_exact(&[7, 7, 6, 6, 5, 5], 3), 12);
    }

    #[test]
    fn exact_opt_beats_greedy_sometimes() {
        // Classic greedy-bad instance: loads 1,1,...,1,m with m links.
        let m = 4;
        let mut loads = vec![1u64; m * (m - 1)];
        loads.push(m as u64);
        let greedy = greedy_assign(&loads, m).makespan();
        let opt = opt_makespan_exact(&loads, m);
        assert_eq!(opt, m as u64);
        assert_eq!(greedy, 2 * m as u64 - 1, "greedy hits the Lemma 2 bound");
        assert!(greedy_satisfies_lemma2(&loads, m));
    }

    #[test]
    fn lemma2_bound_on_random_instances() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..200 {
            let n = rng.random_range(1..12);
            let m = rng.random_range(1..6);
            let loads: Vec<u64> = (0..n).map(|_| rng.random_range(0..100)).collect();
            assert!(greedy_satisfies_lemma2(&loads, m), "loads {loads:?}, m {m}");
        }
    }

    #[test]
    fn opt_lower_bound_is_a_lower_bound() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let n = rng.random_range(1..10);
            let m = rng.random_range(1..5);
            let loads: Vec<u64> = (0..n).map(|_| rng.random_range(0..50)).collect();
            assert!(opt_makespan_lower_bound(&loads, m) <= opt_makespan_exact(&loads, m));
        }
    }

    #[test]
    fn inventor_advice_differs_from_greedy_when_small_load_arrives() {
        // Current loads equal; a tiny load arrives with many big future
        // loads expected: the inventor reserves the emptiest links for the
        // big loads... with equal links the advice coincides; construct an
        // uneven case instead.
        // Links: [10, 0, 0]; own load 1; expect 2 future loads of ~10.
        // LPT: 10s go to links 1 and 2 (→ 10,10,10), then own 1 goes to
        // link 0 (tie at 10, lowest index... all equal → link 0).
        // Greedy would put the 1 on link 1 (least loaded).
        let advised = inventor_suggested_link(&[10, 0, 0], 1, 10.0, 2);
        assert_eq!(advised, 0);
        // Greedy choice:
        let greedy = (0..3).min_by_key(|&j| ([10u64, 0, 0][j], j)).unwrap();
        assert_eq!(greedy, 1);
    }

    #[test]
    fn inventor_assign_makespan_reasonable() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let loads: Vec<u64> = (0..200).map(|_| rng.random_range(0..=1000)).collect();
        let m = 10;
        let inventor = inventor_assign(&loads, m).makespan();
        let lower = opt_makespan_lower_bound(&loads, m);
        // Sanity: within the greedy guarantee of OPT.
        assert!(inventor as u128 * m as u128 <= (2 * m as u128 - 1) * lower as u128 * 2);
        // Totals conserved.
        let total: u64 = loads.iter().sum();
        assert_eq!(
            inventor_assign(&loads, m).link_loads.iter().sum::<u64>(),
            total
        );
    }

    #[test]
    fn mixed_obedience_extremes_match_pure_strategies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let loads: Vec<u64> = (0..100).map(|_| rng.random_range(0..=1000)).collect();
        let m = 7;
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(1);
        let all_obey = mixed_obedience_assign(&loads, m, 1.0, &mut rng_a);
        assert_eq!(all_obey, inventor_assign(&loads, m));
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(1);
        let none_obey = mixed_obedience_assign(&loads, m, 0.0, &mut rng_b);
        assert_eq!(none_obey, greedy_assign(&loads, m));
    }

    #[test]
    fn single_link_everything_coincides() {
        let loads = [5u64, 3, 8];
        assert_eq!(greedy_assign(&loads, 1).makespan(), 16);
        assert_eq!(inventor_assign(&loads, 1).makespan(), 16);
        assert_eq!(opt_makespan_exact(&loads, 1), 16);
    }

    #[test]
    #[should_panic(expected = "at least one link")]
    fn zero_links_panics() {
        let _ = greedy_assign(&[1], 0);
    }
}
