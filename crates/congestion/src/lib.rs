//! # ra-congestion — online network congestion games (§6)
//!
//! The substrate for the paper's final case study:
//!
//! * [`Network`] / [`DelayFn`] — directed networks with load-dependent
//!   delays and exact Dijkstra routing;
//! * [`fig6_instance`] / [`fig6_outcome`] — the Fig. 6 example showing
//!   greedy arrival-time best-replies are not hindsight best-replies;
//! * [`greedy_assign`] / [`inventor_assign`] — the two competing strategies
//!   on parallel links, with Lemma 2's `(2 − 1/m)·OPT` guarantee checkable
//!   via [`opt_makespan_exact`];
//! * [`run_fig7`] — the headline simulation regenerating Fig. 7;
//! * [`rosenthal_potential`] — why the offline game always has a pure Nash
//!   equilibrium (and why best-response dynamics converge).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod graph;
mod online;
mod parallel;
mod potential;
mod simulation;

pub use graph::{Arc, ArcId, DelayFn, Network, Node};
pub use online::{fig6_instance, fig6_outcome, play_greedy, Configuration, Fig6, Request};
pub use parallel::{
    greedy_assign, greedy_satisfies_lemma2, inventor_assign, inventor_suggested_link, lpt_assign,
    mixed_obedience_assign, opt_makespan_exact, opt_makespan_lower_bound, Assignment,
};
pub use potential::{
    best_response_dynamics_paths, best_response_step, configuration_from_paths,
    is_path_equilibrium, rosenthal_potential,
};
pub use simulation::{fig7_iteration, run_fig7, Fig7Config, Fig7Point};
