//! The online congestion game of §6: agents arrive one by one and commit to
//! paths irrevocably.
//!
//! Includes the Fig. 6 construction showing that the greedy best-reply at
//! arrival time need not be a best-reply in hindsight once later agents have
//! arrived.

use ra_exact::Rational;

use crate::graph::{ArcId, DelayFn, Network, Node};

/// One agent's routing request: where from, where to, how much load, in
/// arrival order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Source node `s_i`.
    pub source: Node,
    /// Sink node `t_i`.
    pub sink: Node,
    /// Load `w_i`.
    pub load: Rational,
}

/// The evolving configuration `π(i)`: chosen paths and arc loads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Configuration {
    /// Path (arc ids) chosen by each agent that has arrived, in order.
    pub paths: Vec<Vec<ArcId>>,
    /// Current total load `W_e` on each arc.
    pub arc_loads: Vec<Rational>,
}

impl Configuration {
    /// Empty configuration for a network.
    pub fn new(network: &Network) -> Configuration {
        Configuration {
            paths: Vec::new(),
            arc_loads: vec![Rational::zero(); network.num_arcs()],
        }
    }

    /// Commits a path for the next agent.
    pub fn commit(&mut self, path: Vec<ArcId>, load: &Rational) {
        for &aid in &path {
            self.arc_loads[aid] = &self.arc_loads[aid] + load;
        }
        self.paths.push(path);
    }

    /// The delay agent `i` currently experiences: `λ_i(π) = Σ_{e∈π_i} d_e(W_e)`.
    pub fn agent_delay(&self, network: &Network, agent: usize) -> Rational {
        network.path_delay(&self.paths[agent], &self.arc_loads)
    }

    /// Total congestion `Λ(π) = Σ_e d_e(W_e)` — the inventor's objective.
    pub fn total_congestion(&self, network: &Network) -> Rational {
        (0..network.num_arcs())
            .map(|aid| network.arc(aid).delay.eval(&self.arc_loads[aid]))
            .fold(Rational::zero(), |a, b| a + b)
    }

    /// The delay agent `agent` (of the given `load`) would experience after
    /// unilaterally re-routing to `path` in the current configuration.
    pub fn hindsight_delay_with_load(
        &self,
        network: &Network,
        agent: usize,
        load: &Rational,
        path: &[ArcId],
    ) -> Rational {
        let mut loads = self.arc_loads.clone();
        for &aid in &self.paths[agent] {
            loads[aid] = &loads[aid] - load;
        }
        for &aid in path {
            loads[aid] = &loads[aid] + load;
        }
        network.path_delay(path, &loads)
    }
}

/// Plays the whole arrival sequence greedily: each agent takes the
/// minimum-delay path at its arrival time (the "natural" strategy the
/// inventor's advice competes with).
///
/// # Panics
///
/// Panics if some request's sink is unreachable.
pub fn play_greedy(network: &Network, requests: &[Request]) -> Configuration {
    let mut config = Configuration::new(network);
    for req in requests {
        let (path, _) = network
            .shortest_path(&config.arc_loads, &req.load, req.source, req.sink)
            .expect("sink reachable");
        config.commit(path, &req.load);
    }
    config
}

/// The Fig. 6 instance: nodes `a, b, c, d`, identity delays, `2k` unit-load
/// agents pre-routed so every arc has congestion `k`, then agent `2k+1`
/// (a → d) and agent `2k+2` (b → d).
#[derive(Clone, Debug)]
pub struct Fig6 {
    /// The four-node network (a=0, b=1, c=2, d=3).
    pub network: Network,
    /// Arc ids: a→b, b→d, a→c, c→d.
    pub arcs: [ArcId; 4],
    /// The configuration right before agent 2k+1 arrives.
    pub config: Configuration,
    /// The parameter k.
    pub k: u64,
}

/// Builds the Fig. 6 example for a given `k ≥ 1`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn fig6_instance(k: u64) -> Fig6 {
    assert!(k >= 1, "Fig. 6 needs k >= 1");
    let mut network = Network::new(4);
    let ab = network.add_arc(0, 1, DelayFn::Identity);
    let bd = network.add_arc(1, 3, DelayFn::Identity);
    let ac = network.add_arc(0, 2, DelayFn::Identity);
    let cd = network.add_arc(2, 3, DelayFn::Identity);
    let mut config = Configuration::new(&network);
    // k agents a→b→d and k agents a→c→d give every arc congestion k.
    for _ in 0..k {
        config.commit(vec![ab, bd], &Rational::one());
        config.commit(vec![ac, cd], &Rational::one());
    }
    Fig6 {
        network,
        arcs: [ab, bd, ac, cd],
        config,
        k,
    }
}

/// Plays out the Fig. 6 story and returns
/// `(delay experienced by agent 2k+1, its hindsight best-reply delay)` —
/// `(2k+3, 2k+2)` in the paper.
pub fn fig6_outcome(k: u64) -> (Rational, Rational) {
    let Fig6 {
        network,
        arcs,
        mut config,
        ..
    } = fig6_instance(k);
    let [_, bd, ac, cd] = arcs;
    let one = Rational::one();
    // Agent 2k+1 (a → d) routes greedily; ties break toward a→b→d (lowest
    // arc ids), exactly the paper's choice.
    let agent_idx = config.paths.len();
    let (path, _) = network
        .shortest_path(&config.arc_loads, &one, 0, 3)
        .expect("reachable");
    config.commit(path, &one);
    // Agent 2k+2 (b → d) has a single option.
    config.commit(vec![bd], &one);
    let experienced = config.agent_delay(&network, agent_idx);
    let hindsight = config.hindsight_delay_with_load(&network, agent_idx, &one, &[ac, cd]);
    (experienced, hindsight)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(v: i64) -> Rational {
        Rational::from(v)
    }

    #[test]
    fn fig6_matches_paper_numbers() {
        for k in 1..8u64 {
            let (experienced, hindsight) = fig6_outcome(k);
            assert_eq!(experienced, r(2 * k as i64 + 3), "k = {k}");
            assert_eq!(hindsight, r(2 * k as i64 + 2), "k = {k}");
            assert!(hindsight < experienced, "greedy is not hindsight-optimal");
        }
    }

    #[test]
    fn fig6_initial_congestion_is_k() {
        let fig = fig6_instance(5);
        for &aid in &fig.arcs {
            assert_eq!(fig.config.arc_loads[aid], r(5));
        }
    }

    #[test]
    fn greedy_play_commits_all_agents() {
        let fig = fig6_instance(2);
        let requests = vec![
            Request {
                source: 0,
                sink: 3,
                load: Rational::one(),
            },
            Request {
                source: 1,
                sink: 3,
                load: Rational::one(),
            },
        ];
        let config = play_greedy(&fig.network, &requests);
        assert_eq!(config.paths.len(), 2);
    }

    #[test]
    fn total_congestion_accumulates() {
        let mut n = Network::new(2);
        n.add_arc(0, 1, DelayFn::Identity);
        let mut config = Configuration::new(&n);
        config.commit(vec![0], &r(3));
        config.commit(vec![0], &r(4));
        assert_eq!(config.total_congestion(&n), r(7));
        assert_eq!(config.agent_delay(&n, 0), r(7));
    }

    #[test]
    fn hindsight_rerouting_moves_load() {
        let fig = fig6_instance(1);
        let mut config = fig.config.clone();
        let one = Rational::one();
        let agent = config.paths.len();
        config.commit(vec![fig.arcs[0], fig.arcs[1]], &one);
        // Re-route that agent to the c-side: its own load leaves the b-side.
        let d = config.hindsight_delay_with_load(
            &fig.network,
            agent,
            &one,
            &[fig.arcs[2], fig.arcs[3]],
        );
        assert_eq!(d, r(4)); // (1+1) + (1+1)
    }
}
