//! Directed networks with load-dependent arc delays (§6).
//!
//! A network `N = (V, E, (d_e))` has a non-decreasing delay function per
//! arc, evaluated on the arc's total load. Delays are exact rationals so the
//! Fig. 6 analysis and the potential-function arguments are decided exactly.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use ra_exact::Rational;

/// A node identifier (index into the network's node list).
pub type Node = usize;

/// An arc identifier (index into the network's arc list).
pub type ArcId = usize;

/// A non-decreasing delay function `d_e : load → delay`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelayFn {
    /// `d(x) = x` — the identity delay of the Fig. 6/7 examples.
    Identity,
    /// `d(x) = a·x + b` with `a ≥ 0`.
    Affine {
        /// Slope `a ≥ 0`.
        coeff: Rational,
        /// Intercept `b`.
        constant: Rational,
    },
    /// `d(x) = c`, load-independent.
    Constant(Rational),
}

impl DelayFn {
    /// Evaluates the delay at the given load.
    pub fn eval(&self, load: &Rational) -> Rational {
        match self {
            DelayFn::Identity => load.clone(),
            DelayFn::Affine { coeff, constant } => coeff * load + constant,
            DelayFn::Constant(c) => c.clone(),
        }
    }
}

/// A directed arc with a delay function.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arc {
    /// Tail node.
    pub from: Node,
    /// Head node.
    pub to: Node,
    /// The arc's delay function.
    pub delay: DelayFn,
}

/// A directed network with delay functions.
///
/// # Examples
///
/// ```
/// use ra_congestion::{DelayFn, Network};
///
/// let mut n = Network::new(3);
/// n.add_arc(0, 1, DelayFn::Identity);
/// n.add_arc(1, 2, DelayFn::Identity);
/// assert_eq!(n.num_arcs(), 2);
/// assert_eq!(n.arcs_from(0).len(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Network {
    num_nodes: usize,
    arcs: Vec<Arc>,
    out: Vec<Vec<ArcId>>,
}

impl Network {
    /// Creates a network with `num_nodes` nodes and no arcs.
    pub fn new(num_nodes: usize) -> Network {
        Network {
            num_nodes,
            arcs: Vec::new(),
            out: vec![Vec::new(); num_nodes],
        }
    }

    /// Adds an arc and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_arc(&mut self, from: Node, to: Node, delay: DelayFn) -> ArcId {
        assert!(
            from < self.num_nodes && to < self.num_nodes,
            "arc endpoint out of range"
        );
        let id = self.arcs.len();
        self.arcs.push(Arc { from, to, delay });
        self.out[from].push(id);
        id
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of arcs.
    pub fn num_arcs(&self) -> usize {
        self.arcs.len()
    }

    /// The arc with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn arc(&self, id: ArcId) -> &Arc {
        &self.arcs[id]
    }

    /// Ids of the arcs leaving `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn arcs_from(&self, node: Node) -> &[ArcId] {
        &self.out[node]
    }

    /// Shortest (minimum-delay) path from `source` to `sink` for an agent of
    /// load `extra`, given the current `loads` on each arc: arc `e` costs
    /// `d_e(W_e + extra)` (the delay the agent would experience there).
    ///
    /// Returns the arc ids along the path and the total delay, or `None` if
    /// the sink is unreachable. Deterministic tie-breaking (lexicographically
    /// smallest arc-id path among minimal-delay ones) keeps simulations
    /// reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `loads.len() != self.num_arcs()` or a node is out of range.
    pub fn shortest_path(
        &self,
        loads: &[Rational],
        extra: &Rational,
        source: Node,
        sink: Node,
    ) -> Option<(Vec<ArcId>, Rational)> {
        assert_eq!(loads.len(), self.arcs.len(), "one load per arc required");
        assert!(
            source < self.num_nodes && sink < self.num_nodes,
            "node out of range"
        );
        // Dijkstra with exact rational distances. Arc costs are
        // non-negative for non-decreasing delays on non-negative loads.
        let mut dist: Vec<Option<Rational>> = vec![None; self.num_nodes];
        let mut pred: Vec<Option<ArcId>> = vec![None; self.num_nodes];
        let mut heap: BinaryHeap<Reverse<(Rational, usize)>> = BinaryHeap::new();
        dist[source] = Some(Rational::zero());
        heap.push(Reverse((Rational::zero(), source)));
        while let Some(Reverse((d, node))) = heap.pop() {
            if dist[node].as_ref() != Some(&d) {
                continue; // stale entry
            }
            if node == sink {
                break;
            }
            for &aid in &self.out[node] {
                let arc = &self.arcs[aid];
                let cost = arc.delay.eval(&(&loads[aid] + extra));
                debug_assert!(!cost.is_negative(), "delays must be non-negative");
                let cand = &d + &cost;
                let better = match &dist[arc.to] {
                    None => true,
                    Some(cur) => {
                        &cand < cur || (&cand == cur && pred[arc.to].is_some_and(|p| aid < p))
                    }
                };
                if better {
                    dist[arc.to] = Some(cand.clone());
                    pred[arc.to] = Some(aid);
                    heap.push(Reverse((cand, arc.to)));
                }
            }
        }
        let total = dist[sink].clone()?;
        let mut path = Vec::new();
        let mut node = sink;
        while node != source {
            let aid = pred[node].expect("predecessor chain reaches source");
            path.push(aid);
            node = self.arcs[aid].from;
        }
        path.reverse();
        Some((path, total))
    }

    /// Total delay of a fixed path under given arc loads (the path user's
    /// own load is assumed already included in `loads`).
    pub fn path_delay(&self, path: &[ArcId], loads: &[Rational]) -> Rational {
        path.iter()
            .map(|&aid| self.arcs[aid].delay.eval(&loads[aid]))
            .fold(Rational::zero(), |a, b| a + b)
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network({} nodes, {} arcs)",
            self.num_nodes,
            self.arcs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_exact::rat;

    fn r(v: i64) -> Rational {
        Rational::from(v)
    }

    /// Two parallel two-hop routes from 0 to 3.
    fn diamond() -> Network {
        let mut n = Network::new(4);
        n.add_arc(0, 1, DelayFn::Identity); // 0
        n.add_arc(1, 3, DelayFn::Identity); // 1
        n.add_arc(0, 2, DelayFn::Identity); // 2
        n.add_arc(2, 3, DelayFn::Identity); // 3
        n
    }

    #[test]
    fn delay_functions() {
        assert_eq!(DelayFn::Identity.eval(&r(7)), r(7));
        assert_eq!(
            DelayFn::Affine {
                coeff: rat(1, 2),
                constant: r(3)
            }
            .eval(&r(4)),
            r(5)
        );
        assert_eq!(DelayFn::Constant(r(9)).eval(&r(100)), r(9));
    }

    #[test]
    fn shortest_path_picks_lighter_route() {
        let n = diamond();
        let loads = vec![r(5), r(5), r(0), r(0)];
        let (path, delay) = n.shortest_path(&loads, &r(1), 0, 3).unwrap();
        assert_eq!(path, vec![2, 3]);
        assert_eq!(delay, r(2));
    }

    #[test]
    fn tie_breaks_toward_lower_arc_ids() {
        let n = diamond();
        let loads = vec![r(0); 4];
        let (path, delay) = n.shortest_path(&loads, &r(1), 0, 3).unwrap();
        assert_eq!(delay, r(2));
        assert_eq!(path, vec![0, 1], "deterministic tie-break");
    }

    #[test]
    fn unreachable_sink() {
        let mut n = Network::new(3);
        n.add_arc(0, 1, DelayFn::Identity);
        assert!(n.shortest_path(&[r(0)], &r(1), 0, 2).is_none());
    }

    #[test]
    fn path_delay_matches_manual_sum() {
        let n = diamond();
        let loads = vec![r(3), r(4), r(0), r(0)];
        assert_eq!(n.path_delay(&[0, 1], &loads), r(7));
    }

    #[test]
    fn source_equals_sink() {
        let n = diamond();
        let (path, delay) = n.shortest_path(&vec![r(0); 4], &r(1), 2, 2).unwrap();
        assert!(path.is_empty());
        assert_eq!(delay, r(0));
    }

    #[test]
    fn dijkstra_agrees_with_bruteforce_on_random_dags() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..20 {
            // Random layered DAG on 6 nodes.
            let mut n = Network::new(6);
            let mut loads = Vec::new();
            for from in 0..5 {
                for to in from + 1..6 {
                    if rng.random_bool(0.6) {
                        n.add_arc(from, to, DelayFn::Identity);
                        loads.push(r(rng.random_range(0..10)));
                    }
                }
            }
            let dij = n.shortest_path(&loads, &r(1), 0, 5);
            let brute = brute_force_best(&n, &loads, 0, 5);
            match (dij, brute) {
                (None, None) => {}
                (Some((_, d)), Some(b)) => assert_eq!(d, b),
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    fn brute_force_best(n: &Network, loads: &[Rational], s: Node, t: Node) -> Option<Rational> {
        fn rec(
            n: &Network,
            loads: &[Rational],
            node: Node,
            t: Node,
            acc: Rational,
            best: &mut Option<Rational>,
        ) {
            if node == t {
                if best.is_none() || best.as_ref().unwrap() > &acc {
                    *best = Some(acc);
                }
                return;
            }
            for &aid in n.arcs_from(node) {
                let arc = n.arc(aid);
                let cost = arc.delay.eval(&(&loads[aid] + &Rational::one()));
                rec(n, loads, arc.to, t, &acc + &cost, best);
            }
        }
        let mut best = None;
        rec(n, loads, s, t, Rational::zero(), &mut best);
        best
    }
}
