//! Property-based tests for the congestion substrate.

use proptest::prelude::*;
use ra_congestion::{
    best_response_dynamics_paths, configuration_from_paths, fig6_instance, fig6_outcome,
    greedy_assign, greedy_satisfies_lemma2, inventor_assign, is_path_equilibrium, lpt_assign,
    mixed_obedience_assign, opt_makespan_exact, opt_makespan_lower_bound, rosenthal_potential,
    DelayFn, Network,
};
use ra_exact::Rational;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Lemma 2: greedy is a (2 − 1/m) approximation, verified against exact
    /// OPT on every random instance.
    #[test]
    fn lemma2_never_violated(
        loads in prop::collection::vec(0u64..200, 1..13),
        m in 1usize..6,
    ) {
        prop_assert!(greedy_satisfies_lemma2(&loads, m));
    }

    /// All assignment strategies conserve the total load and produce
    /// makespans at least the OPT lower bound.
    #[test]
    fn assignments_conserve_load(
        loads in prop::collection::vec(0u64..1000, 1..40),
        m in 1usize..10,
        p_num in 0u32..=10,
    ) {
        let total: u64 = loads.iter().sum();
        let lower = opt_makespan_lower_bound(&loads, m);
        let mut rng = StdRng::seed_from_u64(p_num as u64);
        for a in [
            greedy_assign(&loads, m),
            lpt_assign(&loads, m),
            inventor_assign(&loads, m),
            mixed_obedience_assign(&loads, m, p_num as f64 / 10.0, &mut rng),
        ] {
            prop_assert_eq!(a.link_loads.iter().sum::<u64>(), total);
            prop_assert!(a.makespan() >= lower);
            prop_assert_eq!(a.link_of.len(), loads.len());
            prop_assert!(a.link_of.iter().all(|&l| l < m));
            // link_loads is consistent with link_of.
            let mut recomputed = vec![0u64; m];
            for (i, &l) in a.link_of.iter().enumerate() {
                recomputed[l] += loads[i];
            }
            prop_assert_eq!(recomputed, a.link_loads.clone());
        }
    }

    /// LPT is never worse than the worst-case greedy bound and exact OPT is
    /// a true optimum (≤ every strategy's makespan).
    #[test]
    fn exact_opt_is_minimal(
        loads in prop::collection::vec(0u64..100, 1..11),
        m in 1usize..5,
    ) {
        let opt = opt_makespan_exact(&loads, m);
        prop_assert!(opt <= greedy_assign(&loads, m).makespan());
        prop_assert!(opt <= lpt_assign(&loads, m).makespan());
        prop_assert!(opt <= inventor_assign(&loads, m).makespan());
        prop_assert!(opt >= opt_makespan_lower_bound(&loads, m));
    }

    /// Fig. 6 numbers hold for every k.
    #[test]
    fn fig6_generalizes(k in 1u64..30) {
        let (experienced, hindsight) = fig6_outcome(k);
        prop_assert_eq!(experienced, Rational::from(2 * k as i64 + 3));
        prop_assert_eq!(hindsight, Rational::from(2 * k as i64 + 2));
    }

    /// Rosenthal: best-response path dynamics always converge, and the
    /// final configuration is an equilibrium with potential no larger than
    /// the start.
    #[test]
    fn dynamics_converge_and_potential_drops(pile in 1usize..8, k in 1u64..4) {
        let fig = fig6_instance(k);
        let network = fig.network;
        let paths = vec![vec![0usize, 1]; pile];
        let mut config = configuration_from_paths(&network, paths);
        let requests = vec![(0usize, 3usize); pile];
        let before = rosenthal_potential(&network, &config);
        best_response_dynamics_paths(&network, &mut config, &requests, 1000);
        let after = rosenthal_potential(&network, &config);
        prop_assert!(after <= before);
        prop_assert!(is_path_equilibrium(&network, &config, &requests));
    }

    /// Dijkstra's result never exceeds the delay of any explicitly checked
    /// alternative route in the diamond network.
    #[test]
    fn dijkstra_minimality(l0 in 0i64..20, l1 in 0i64..20, l2 in 0i64..20, l3 in 0i64..20) {
        let mut n = Network::new(4);
        n.add_arc(0, 1, DelayFn::Identity);
        n.add_arc(1, 3, DelayFn::Identity);
        n.add_arc(0, 2, DelayFn::Identity);
        n.add_arc(2, 3, DelayFn::Identity);
        let loads: Vec<Rational> = [l0, l1, l2, l3].iter().map(|&v| Rational::from(v)).collect();
        let one = Rational::one();
        let (_, best) = n.shortest_path(&loads, &one, 0, 3).unwrap();
        let via_b = Rational::from(l0 + 1) + Rational::from(l1 + 1);
        let via_c = Rational::from(l2 + 1) + Rational::from(l3 + 1);
        prop_assert_eq!(best, via_b.min(via_c));
    }
}

/// The §6 obedience interpolation: with p = 1 the mixed model equals the
/// inventor assignment; monotonicity in expectation is not guaranteed
/// per-instance, but extremes must match exactly.
#[test]
fn obedience_extremes() {
    let loads: Vec<u64> = (0..150).map(|i| (i * 37 + 11) % 1000).collect();
    for m in [2usize, 8, 32] {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            mixed_obedience_assign(&loads, m, 1.0, &mut rng),
            inventor_assign(&loads, m)
        );
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(
            mixed_obedience_assign(&loads, m, 0.0, &mut rng),
            greedy_assign(&loads, m)
        );
    }
}

/// Qualitative Fig. 7 shape at small scale: with many links the inventor
/// advice wins a clear majority of iterations.
#[test]
fn inventor_beats_greedy_at_moderate_scale() {
    let mut inventor_wins = 0;
    let total = 40;
    for seed in 0..total {
        let mut rng = StdRng::seed_from_u64(seed);
        let (greedy, inventor) = ra_congestion::fig7_iteration(300, (0, 1000), 30, &mut rng);
        if inventor < greedy {
            inventor_wins += 1;
        }
    }
    assert!(
        inventor_wins * 100 >= total * 60,
        "inventor won only {inventor_wins}/{total}"
    );
}

/// Greedy equals inventor when the future is empty (single agent) or when
/// m = 1.
#[test]
fn degenerate_cases_coincide() {
    for loads in [vec![7u64], vec![3, 9, 2]] {
        assert_eq!(
            greedy_assign(&loads, 1).makespan(),
            inventor_assign(&loads, 1).makespan()
        );
    }
    let single = vec![42u64];
    for m in 1..5 {
        assert_eq!(
            greedy_assign(&single, m).link_of,
            inventor_assign(&single, m).link_of
        );
    }
}

/// Regression: unit-load pile-ups balance to ⌈n/2⌉ / ⌊n/2⌋ in the diamond.
#[test]
fn diamond_balancing() {
    let fig = fig6_instance(1);
    let network = fig.network;
    let n = 9;
    let mut config = configuration_from_paths(&network, vec![vec![0, 1]; n]);
    let requests = vec![(0usize, 3usize); n];
    best_response_dynamics_paths(&network, &mut config, &requests, 10_000);
    let b_side = config.arc_loads[0].clone();
    let c_side = config.arc_loads[2].clone();
    let diff = (b_side - c_side).abs();
    assert!(diff <= Rational::one(), "balanced within one unit");
}
