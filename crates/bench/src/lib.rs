//! # ra-bench — experiment regeneration and benchmarks
//!
//! One binary per table/figure of the paper plus Criterion
//! micro-benchmarks; `docs/BENCHMARKS.md` at the workspace root indexes
//! every binary and its output schema. Shared helpers live here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Formats seconds human-readably (µs/ms/s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.1}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// The workspace root: the nearest ancestor of this crate's manifest dir
/// whose `Cargo.toml` declares `[workspace]`. Falls back to the manifest
/// dir itself if no workspace manifest is found (e.g. the crate is vendored
/// standalone), so the crate never panics over directory layout.
pub fn workspace_root() -> std::path::PathBuf {
    let manifest_dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest_dir
        .ancestors()
        .find(|dir| {
            std::fs::read_to_string(dir.join("Cargo.toml"))
                .map(|manifest| manifest.contains("[workspace]"))
                .unwrap_or(false)
        })
        .unwrap_or(manifest_dir)
        .to_path_buf()
}

/// Writes CSV rows to `results/<name>.csv` under the workspace root,
/// creating the directory if needed and returning the path written.
///
/// # Panics
///
/// Panics on I/O errors — acceptable in experiment binaries.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::path::PathBuf {
    let dir = workspace_root().join("results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut contents = String::from(header);
    contents.push('\n');
    for row in rows {
        contents.push_str(row);
        contents.push('\n');
    }
    std::fs::write(&path, contents).expect("write csv");
    path
}

/// Writes `contents` to `<name>.json`, creating directories as needed and
/// returning the path written. Callers are responsible for producing
/// valid JSON.
///
/// Names prefixed `BENCH_` form the machine-readable perf trajectory and
/// land at the **workspace root**, where they are versioned in git (and
/// grep-asserted by CI) so every PR carries its own throughput snapshot.
/// Everything else lands under `results/`, which stays untracked.
///
/// # Panics
///
/// Panics on I/O errors — acceptable in experiment binaries.
pub fn write_json(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = if name.starts_with("BENCH_") {
        workspace_root()
    } else {
        let dir = workspace_root().join("results");
        std::fs::create_dir_all(&dir).expect("create results dir");
        dir
    };
    let path = dir.join(format!("{name}.json"));
    std::fs::write(&path, contents).expect("write json");
    path
}

/// Constructs an `m × m` bimatrix game whose unique equilibrium mixes
/// uniformly over the first `support_size` strategies of each agent
/// (a generalized rock-paper-scissors block padded with strictly dominated
/// strategies). `support_size` must be odd and `≥ 1`.
///
/// # Panics
///
/// Panics if `support_size` is even, zero, or exceeds `m`.
pub fn game_with_support_size(m: usize, support_size: usize) -> ra_games::BimatrixGame {
    assert!(
        support_size >= 1 && support_size <= m,
        "support size in range"
    );
    assert!(
        support_size % 2 == 1,
        "odd support for a unique cyclic equilibrium"
    );
    use ra_exact::Rational;
    let s = support_size;
    let a = ra_exact::Matrix::from_fn(m, m, |i, j| {
        if i < s && j < s {
            // Cyclic zero-sum block: beats the next (s-1)/2, loses to the
            // previous (s-1)/2.
            let diff = (j + s - i) % s;
            if diff == 0 {
                Rational::zero()
            } else if diff <= (s - 1) / 2 {
                Rational::from(-1)
            } else {
                Rational::from(1)
            }
        } else if i >= s {
            Rational::from(-10) // dominated row
        } else {
            Rational::from(10) // column j >= s is bad for the column agent
        }
    });
    let b = ra_exact::Matrix::from_fn(m, m, |i, j| -&a[(i, j)]);
    ra_games::BimatrixGame::new(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ra_games::{MixedProfile, MixedStrategy};

    #[test]
    fn support_game_has_uniform_equilibrium() {
        for (m, s) in [(5, 3), (8, 5), (6, 1), (7, 7)] {
            let game = game_with_support_size(m, s);
            let mut probs = vec![ra_exact::Rational::zero(); m];
            for p in probs.iter_mut().take(s) {
                *p = ra_exact::Rational::new(1, s as i64);
            }
            let profile = MixedProfile {
                row: MixedStrategy::try_new(probs.clone()).unwrap(),
                col: MixedStrategy::try_new(probs).unwrap(),
            };
            assert!(game.is_nash(&profile), "m={m} s={s}");
        }
    }

    #[test]
    fn workspace_root_has_workspace_manifest() {
        let root = workspace_root();
        let manifest = std::fs::read_to_string(root.join("Cargo.toml")).unwrap();
        assert!(manifest.contains("[workspace]"));
        // Robust against crate depth: not derived by counting ancestors.
        assert!(root
            .join("crates")
            .join("bench")
            .join("Cargo.toml")
            .exists());
    }

    #[test]
    fn write_csv_creates_results_dir() {
        let path = write_csv(
            "smoke_write_csv",
            "a,b",
            &[String::from("1,2"), String::from("3,4")],
        );
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "a,b\n1,2\n3,4\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_json_creates_results_dir() {
        let path = write_json("smoke_write_json", "{\"ok\":true}");
        assert!(path.parent().unwrap().ends_with("results"));
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "{\"ok\":true}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bench_prefixed_json_lands_at_the_workspace_root() {
        let path = write_json("BENCH_smoke", "{\"ok\":true}");
        assert_eq!(path.parent().unwrap(), workspace_root());
        let contents = std::fs::read_to_string(&path).unwrap();
        assert_eq!(contents, "{\"ok\":true}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn timing_helpers() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
        assert!(fmt_secs(0.0000005).ends_with("µs"));
        assert!(fmt_secs(0.005).ends_with("ms"));
        assert!(fmt_secs(2.5).ends_with('s'));
    }
}
