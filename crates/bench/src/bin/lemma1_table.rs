//! Regenerates the Lemma 1 measurements: P1 verifier cost vs inventor-side
//! computation cost, and bits communicated, as the game grows.
//!
//! Lemma 1: "The interactive proof P1 has verifier complexity of time
//! LP(n, m) … and the number of bits communicated is O(n + m)." The *shape*
//! to reproduce: verification stays polynomial (a single small linear
//! solve) while computation (support enumeration, worst-case exponential;
//! Lemke–Howson) blows up; certificate size grows linearly.
//!
//! Usage: `cargo run -p ra-bench --release --bin lemma1_table`

use ra_bench::{fmt_secs, timed, write_csv};
use ra_games::GameGenerator;
use ra_proofs::{verify_support_certificate, SupportCertificate};
use ra_solvers::{enumerate_equilibria, lemke_howson, EnumerationOptions};

fn main() {
    println!("Lemma 1 — verify vs compute on random n×n bimatrix games (5 seeds each):\n");
    println!(
        "{:>4} {:>14} {:>14} {:>14} {:>12} {:>12}",
        "n", "enumerate", "lemke-howson", "P1 verify", "cert bits", "speedup"
    );
    let mut rows = Vec::new();
    for n in [2usize, 3, 4, 5, 6, 7] {
        let mut t_enum = 0.0;
        let mut t_lh = 0.0;
        let mut t_verify = 0.0;
        let mut bits = 0u64;
        let seeds = 5u64;
        let mut verified = 0u32;
        for seed in 0..seeds {
            let game = GameGenerator::seeded(1000 * n as u64 + seed).bimatrix(n, n, -100..=100);
            // Inventor side 1: full support enumeration.
            let ((eqs, _), dt) =
                timed(|| enumerate_equilibria(&game, &EnumerationOptions::default()));
            t_enum += dt;
            // Inventor side 2: one Lemke–Howson run.
            let (_, dt) = timed(|| lemke_howson(&game, 0).expect("LH terminates"));
            t_lh += dt;
            // Agent side: P1 verification of the first equilibrium.
            let Some(eq) = eqs.first() else { continue };
            let cert = SupportCertificate {
                row_support: eq.row_support.clone(),
                col_support: eq.col_support.clone(),
            };
            bits += cert.encoded_bits(&game);
            let (res, dt) = timed(|| verify_support_certificate(&game, &cert));
            t_verify += dt;
            if res.is_ok() {
                verified += 1;
            }
        }
        let k = seeds as f64;
        let speedup = t_enum / t_verify.max(1e-12);
        println!(
            "{:>4} {:>14} {:>14} {:>14} {:>12} {:>11.0}x",
            n,
            fmt_secs(t_enum / k),
            fmt_secs(t_lh / k),
            fmt_secs(t_verify / k),
            bits / seeds,
            speedup
        );
        rows.push(format!(
            "{n},{:.9},{:.9},{:.9},{},{verified}",
            t_enum / k,
            t_lh / k,
            t_verify / k,
            bits / seeds
        ));
    }
    let path = write_csv(
        "lemma1",
        "n,enumerate_secs,lemke_howson_secs,p1_verify_secs,certificate_bits,verified_count",
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check — certificate bits grow as n + m (linear), verification time stays\n\
         far below enumeration and the gap widens with n."
    );
}
