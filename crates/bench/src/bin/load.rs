//! Open-loop load harness: Poisson and bursty arrivals from thousands of
//! simulated agents against a [`ShardedAuthority`], with per-shard bounded
//! queues and shed counters.
//!
//! Closed-loop benches (`shard_throughput`) issue the next consultation
//! only when the previous one finishes, so they can never observe queueing
//! delay — the failure mode that matters for the ROADMAP's "millions of
//! users" claim. Here arrivals are generated on a wall-clock schedule that
//! does not wait for service: a generator thread paces an arrival process
//! (exponential inter-arrivals for Poisson; fixed-size back-to-back bursts
//! with exponential gaps for bursty) and `try_send`s each request into the
//! bounded queue of its target shard worker. A full queue **sheds** the
//! request — counted, not blocked — exactly like an admission-controlled
//! front door. Workers drain their queue into `ShardedAuthority::consult`
//! and record sojourn time (arrival to completion), reported as
//! p50/p95/p99 per cell.
//!
//! Before the cells run, a closed-loop calibration measures the engine's
//! service capacity on this machine; arrival rates are then set relative
//! to it (a moderate cell below capacity, an overload cell above it), so
//! the harness exercises both the low-queueing and the shedding regimes
//! on any hardware.
//!
//! Results go to `results/load.csv` and, schema-gated in CI,
//! `BENCH_load.json` at the workspace root.
//!
//! Usage: `cargo run -p ra-bench --release --bin load [-- N]` where `N`
//! is the per-cell arrival budget (default 4000; CI uses a small value).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use ra_authority::{GameSpec, InventorBehavior, ShardedAuthority, VerifierBehavior};
use ra_bench::{timed, write_csv, write_json};
use ra_games::named::{battle_of_the_sexes, prisoners_dilemma, stag_hunt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Engine shards, and with them harness workers/queues (one bounded
/// queue per shard worker).
const SHARDS: usize = 4;
/// Distinct simulated agents cycling through the arrival stream.
const AGENTS: u64 = 2000;
/// Bounded per-shard queue depth; a full queue sheds.
const QUEUE_CAP: usize = 64;
/// Arrivals per burst in the bursty process.
const BURST: u64 = 16;

/// One draw from Exp(rate): the Poisson process's inter-arrival gap.
fn exp_gap(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random_range(0.0..=1.0);
    -(1.0 - u).max(1e-12).ln() / rate
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn specs() -> Vec<Arc<GameSpec>> {
    vec![
        Arc::new(GameSpec::Strategic(prisoners_dilemma().to_strategic())),
        Arc::new(GameSpec::Bimatrix(battle_of_the_sexes())),
        Arc::new(GameSpec::Strategic(stag_hunt(3))),
    ]
}

/// Closed-loop capacity of the engine on this machine, in consults/sec:
/// the yardstick the open-loop arrival rates are set against.
fn calibrate(specs: &[Arc<GameSpec>], n: u64) -> f64 {
    let engine = ShardedAuthority::new(
        SHARDS,
        InventorBehavior::Honest,
        &[VerifierBehavior::Honest; 3],
    );
    let requests: Vec<(u64, Arc<GameSpec>)> = (0..n)
        .map(|i| {
            (
                i % AGENTS,
                Arc::clone(&specs[(i % specs.len() as u64) as usize]),
            )
        })
        .collect();
    let (outcomes, secs) = timed(|| engine.consult_batch(&requests));
    assert!(outcomes.iter().all(|o| o.adopted));
    n as f64 / secs.max(1e-12)
}

/// One measured cell of the harness.
struct Cell {
    process: &'static str,
    target_rate: f64,
    offered: u64,
    completed: u64,
    shed: u64,
    secs: f64,
    throughput: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

/// Runs one open-loop cell: `total` arrivals from `process` at long-run
/// `rate`, against a fresh engine (so cache warmth and reputation state
/// never leak between cells).
fn run_cell(
    process: &'static str,
    rate: f64,
    total: u64,
    specs: &[Arc<GameSpec>],
    seed: u64,
) -> Cell {
    let engine = Arc::new(ShardedAuthority::new(
        SHARDS,
        InventorBehavior::Honest,
        &[VerifierBehavior::Honest; 3],
    ));
    let shed_count = Arc::new(AtomicU64::new(0));
    let mut queues = Vec::with_capacity(SHARDS);
    let mut workers = Vec::with_capacity(SHARDS);
    for _ in 0..SHARDS {
        let (tx, rx) = sync_channel::<(u64, Arc<GameSpec>, Instant)>(QUEUE_CAP);
        queues.push(tx);
        let engine = Arc::clone(&engine);
        workers.push(thread::spawn(move || {
            let mut sojourns_us = Vec::new();
            while let Ok((agent, spec, arrival)) = rx.recv() {
                engine.consult(agent, &spec);
                sojourns_us.push(arrival.elapsed().as_secs_f64() * 1e6);
            }
            sojourns_us
        }));
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    // Absolute schedule in seconds since `start`: sleeping can overshoot,
    // but the schedule does not drift — a late generator catches up by
    // sending immediately, which is exactly open-loop semantics.
    let mut next_arrival = 0.0f64;
    let mut in_burst = 0u64;
    for i in 0..total {
        let now = start.elapsed().as_secs_f64();
        if next_arrival > now {
            thread::sleep(Duration::from_secs_f64(next_arrival - now));
        }
        let agent = rng.random_range(0..AGENTS);
        let spec = Arc::clone(&specs[(i % specs.len() as u64) as usize]);
        match queues[agent as usize % SHARDS].try_send((agent, spec, Instant::now())) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                shed_count.fetch_add(1, Ordering::Relaxed);
            }
            Err(TrySendError::Disconnected(_)) => {
                unreachable!("workers outlive the generator")
            }
        }
        next_arrival += match process {
            "poisson" => exp_gap(&mut rng, rate),
            _ => {
                // Bursty: BURST back-to-back arrivals, then one
                // exponential gap with mean BURST/rate, so the long-run
                // rate still equals `rate`.
                in_burst += 1;
                if in_burst < BURST {
                    0.0
                } else {
                    in_burst = 0;
                    exp_gap(&mut rng, rate / BURST as f64)
                }
            }
        };
    }
    drop(queues);
    let mut sojourns_us: Vec<f64> = Vec::new();
    for w in workers {
        sojourns_us.extend(w.join().expect("worker panicked"));
    }
    let secs = start.elapsed().as_secs_f64();
    sojourns_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let completed = sojourns_us.len() as u64;
    let shed = shed_count.load(Ordering::Relaxed);
    assert_eq!(completed + shed, total, "every arrival completes or sheds");
    Cell {
        process,
        target_rate: rate,
        offered: total,
        completed,
        shed,
        secs,
        throughput: completed as f64 / secs.max(1e-12),
        p50_us: percentile(&sojourns_us, 0.50),
        p95_us: percentile(&sojourns_us, 0.95),
        p99_us: percentile(&sojourns_us, 0.99),
    }
}

fn main() {
    let total: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("arrival budget must be an integer"))
        .unwrap_or(4000);
    let specs = specs();
    let capacity = calibrate(&specs, total.clamp(200, 2000));
    println!(
        "Open-loop load — {SHARDS} shards, {AGENTS} simulated agents, queue depth \
         {QUEUE_CAP}, {total} arrivals per cell.\n\
         Closed-loop calibration: {capacity:.0} consults/sec.\n"
    );
    // One cell below capacity (queueing should be mild) and one above it
    // (the bounded queues must shed), for each arrival process.
    let rates = [("moderate", capacity * 0.6), ("overload", capacity * 1.5)];
    println!(
        "{:>8} {:>9} {:>12} {:>9} {:>9} {:>7} {:>12} {:>9} {:>9} {:>9}",
        "process",
        "regime",
        "rate/s",
        "offered",
        "completed",
        "shed",
        "thruput/s",
        "p50 µs",
        "p95 µs",
        "p99 µs"
    );
    let mut rows = Vec::new();
    let mut json_cells = Vec::new();
    for (ci, process) in ["poisson", "bursty"].into_iter().enumerate() {
        for (ri, (regime, rate)) in rates.iter().enumerate() {
            let cell = run_cell(
                process,
                *rate,
                total,
                &specs,
                0xC0FFEE + (ci * 2 + ri) as u64,
            );
            println!(
                "{:>8} {:>9} {:>12.0} {:>9} {:>9} {:>7} {:>12.0} {:>9.0} {:>9.0} {:>9.0}",
                cell.process,
                regime,
                cell.target_rate,
                cell.offered,
                cell.completed,
                cell.shed,
                cell.throughput,
                cell.p50_us,
                cell.p95_us,
                cell.p99_us
            );
            rows.push(format!(
                "{},{},{:.3},{},{},{},{:.6},{:.3},{:.1},{:.1},{:.1}",
                cell.process,
                regime,
                cell.target_rate,
                cell.offered,
                cell.completed,
                cell.shed,
                cell.secs,
                cell.throughput,
                cell.p50_us,
                cell.p95_us,
                cell.p99_us
            ));
            json_cells.push(format!(
                "{{\"process\":\"{}\",\"regime\":\"{}\",\"target_rate\":{:.3},\
                 \"offered\":{},\"completed\":{},\"shed\":{},\"secs\":{:.6},\
                 \"throughput_per_sec\":{:.3},\"p50_us\":{:.1},\"p95_us\":{:.1},\
                 \"p99_us\":{:.1}}}",
                cell.process,
                regime,
                cell.target_rate,
                cell.offered,
                cell.completed,
                cell.shed,
                cell.secs,
                cell.throughput,
                cell.p50_us,
                cell.p95_us,
                cell.p99_us
            ));
        }
    }
    let csv_path = write_csv(
        "load",
        "process,regime,target_rate,offered,completed,shed,secs,throughput,p50_us,p95_us,p99_us",
        &rows,
    );
    let json_path = write_json(
        "BENCH_load",
        &format!(
            "{{\"bench\":\"load\",\"unit\":\"microseconds\",\"shards\":{SHARDS},\
             \"agents\":{AGENTS},\"queue_capacity\":{QUEUE_CAP},\"burst\":{BURST},\
             \"arrivals_per_cell\":{total},\
             \"calibrated_capacity_per_sec\":{capacity:.3},\
             \"cells\":[{}]}}",
            json_cells.join(",")
        ),
    );
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());
    println!(
        "\nreading the numbers — in the moderate cells shed should be (near) zero and\n\
         the percentiles close to pure service time; in the overload cells the bounded\n\
         queues cap the percentiles while the shed counter absorbs the excess. A p99\n\
         blow-up in the moderate Poisson cell is the regression signal: it means the\n\
         consult path is serializing somewhere it should not."
    );
}
