//! Regenerates the Fig. 5 example and Remark 2's non-identifiability
//! demonstration.
//!
//! The game:
//! ```text
//!        C     D
//!  A   1,1   1,1
//!  B   0,1   2,0
//! ```
//! The P2 prover tells the row agent only: support {A}, probabilities
//! (1, 0), λ1 = λ2 = 1. Remark 2: the row agent cannot reconstruct the
//! column agent's strategy — any (q_C, q_D) with q_D ≤ 1/2 completes an
//! equilibrium, and all of them induce the *same* advice.
//!
//! Usage: `cargo run -p ra-bench --release --bin fig5_remark2`

use ra_exact::rat;
use ra_games::named::fig5_game;
use ra_games::{MixedProfile, MixedStrategy};
use ra_proofs::honest_row_advice;
use ra_solvers::{enumerate_equilibria, EnumerationOptions};

fn main() {
    let game = fig5_game();
    println!("Fig. 5 game (row payoffs | column payoffs):");
    println!("        C       D");
    for (i, name) in ["A", "B"].iter().enumerate() {
        print!("  {name}  ");
        for j in 0..2 {
            print!("{}, {}   ", game.a(i, j), game.b(i, j));
        }
        println!();
    }

    println!("\nEquilibria found by support enumeration:");
    let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
    for eq in &eqs {
        println!(
            "  row {:?} (probs {:?})  col {:?} (probs {:?})  λ1 = {}, λ2 = {}",
            eq.row_support,
            eq.profile.row.probs(),
            eq.col_support,
            eq.profile.col.probs(),
            eq.lambda1,
            eq.lambda2
        );
    }

    println!("\nRemark 2 — the equilibrium continuum (row = pure A, any q_D ≤ 1/2):");
    let mut advices = Vec::new();
    for (qc, qd) in [
        (rat(1, 1), rat(0, 1)),
        (rat(7, 8), rat(1, 8)),
        (rat(3, 4), rat(1, 4)),
        (rat(5, 8), rat(3, 8)),
        (rat(1, 2), rat(1, 2)),
    ] {
        let profile = MixedProfile {
            row: MixedStrategy::pure(2, 0),
            col: MixedStrategy::try_new(vec![qc.clone(), qd.clone()]).unwrap(),
        };
        let is_nash = game.is_nash(&profile);
        let advice = honest_row_advice(&game, &profile);
        println!(
            "  col = ({qc}, {qd}): equilibrium = {is_nash}, row advice = \
             (support {{A}}, λ1 = {}, λ2 = {})",
            advice.lambda_own, advice.lambda_opp
        );
        assert!(is_nash);
        advices.push(advice);
    }
    // And one beyond the continuum boundary:
    let beyond = MixedProfile {
        row: MixedStrategy::pure(2, 0),
        col: MixedStrategy::try_new(vec![rat(1, 4), rat(3, 4)]).unwrap(),
    };
    println!(
        "  col = (1/4, 3/4): equilibrium = {} (q_D > 1/2 breaks it — row prefers B)",
        game.is_nash(&beyond)
    );
    assert!(!game.is_nash(&beyond));

    assert!(advices.windows(2).all(|w| w[0] == w[1]));
    println!(
        "\npaper check — all equilibria in the continuum induce the IDENTICAL row-agent\n\
         advice: the row agent provably cannot tell which column strategy is in play."
    );
}
