//! Measures consultation throughput of the sharded session engine as the
//! shard count grows: the ROADMAP's "sharding/batching of verification
//! sessions across buses" scale goal, made a number.
//!
//! For each shard count in {1, 2, 4, 8} the same batch of consultations
//! (agents 0..N, cycling over cheap §3 and §4 game specs) is fanned out
//! with `ShardedAuthority::consult_batch`, and the wall-clock rate is
//! reported. Results go to `results/shard_throughput.csv` and, in the
//! machine-readable perf-trajectory format, `results/BENCH_shard_throughput.json`.
//!
//! Usage: `cargo run -p ra-bench --release --bin shard_throughput [-- N]`
//! where `N` is the batch size (default 512; CI uses a small value).

use std::sync::Arc;

use ra_authority::{GameSpec, InventorBehavior, ShardedAuthority, VerifierBehavior};
use ra_bench::{fmt_secs, timed, write_csv, write_json};
use ra_games::named::{battle_of_the_sexes, prisoners_dilemma, stag_hunt};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build_batch(n: u64) -> Vec<(u64, Arc<GameSpec>)> {
    let specs = [
        GameSpec::Strategic(prisoners_dilemma().to_strategic()),
        GameSpec::Bimatrix(battle_of_the_sexes()),
        GameSpec::Strategic(stag_hunt(3)),
    ]
    .map(Arc::new);
    (0..n)
        .map(|agent| {
            (
                agent,
                Arc::clone(&specs[(agent % specs.len() as u64) as usize]),
            )
        })
        .collect()
}

fn main() {
    let batch_size: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("batch size must be an integer"))
        .unwrap_or(512);
    let requests = build_batch(batch_size);
    println!(
        "Sharded session engine — {batch_size} consultations per shard count, \
         honest inventor, 3 honest verifiers per shard:\n"
    );
    println!(
        "{:>7} {:>14} {:>16} {:>12} {:>12}",
        "shards", "wall time", "consults/sec", "adopted", "wire bytes"
    );
    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    for shards in SHARD_COUNTS {
        let engine = ShardedAuthority::new(
            shards,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest; 3],
        );
        let (outcomes, secs) = timed(|| engine.consult_batch(&requests));
        let adopted = outcomes.iter().filter(|o| o.adopted).count();
        assert_eq!(
            adopted,
            outcomes.len(),
            "honest infrastructure adopts everything"
        );
        let rate = batch_size as f64 / secs.max(1e-12);
        println!(
            "{:>7} {:>14} {:>16.0} {:>12} {:>12}",
            shards,
            fmt_secs(secs),
            rate,
            adopted,
            engine.total_bytes()
        );
        rows.push(format!(
            "{shards},{batch_size},{secs:.9},{rate:.3},{adopted},{}",
            engine.total_bytes()
        ));
        json_entries.push(format!(
            "{{\"shards\":{shards},\"consultations\":{batch_size},\"secs\":{secs:.9},\
             \"consults_per_sec\":{rate:.3},\"adopted\":{adopted},\"wire_bytes\":{}}}",
            engine.total_bytes()
        ));
    }
    // Fixed 512-consultation column, independent of the CLI batch size:
    // large batches are where the persistent worker pool pays off, so the
    // perf trajectory keeps a stable large-batch point even when CI
    // sweeps a small one. Measured at 1 shard and at 8 so the column
    // carries its own scaling ratio — the number the ROADMAP (and the CI
    // scaling gate) watches.
    const BIG_BATCH: u64 = 512;
    let big_requests = build_batch(BIG_BATCH);
    let mut big_rates = [0.0f64; 2];
    let mut big_secs = 0.0f64;
    for (slot, shards) in [(0, 1usize), (1, 8)] {
        let engine = ShardedAuthority::new(
            shards,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest; 3],
        );
        let (outcomes, secs) = timed(|| engine.consult_batch(&big_requests));
        assert!(outcomes.iter().all(|o| o.adopted));
        big_rates[slot] = BIG_BATCH as f64 / secs.max(1e-12);
        if shards == 8 {
            big_secs = secs;
        }
        println!(
            "\nbatch_512 column — {shards} shard(s), {BIG_BATCH} consultations: {} at \
             {:.0} consults/sec",
            fmt_secs(secs),
            big_rates[slot]
        );
        rows.push(format!(
            "{shards},{BIG_BATCH},{secs:.9},{:.3},{},{}",
            big_rates[slot],
            outcomes.len(),
            engine.total_bytes()
        ));
    }
    let scaling = big_rates[1] / big_rates[0].max(1e-12);
    // On a single-core machine the 8-over-1 ratio is meaningless (the
    // worker pool just time-slices), so the JSON records the core count
    // and the CI scaling gate skips when it reads 1.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("batch_512 scaling, 8 shards over 1: {scaling:.2}x ({cores} core(s))");

    let csv_path = write_csv(
        "shard_throughput",
        "shards,consultations,secs,consults_per_sec,adopted,wire_bytes",
        &rows,
    );
    let json_path = write_json(
        "BENCH_shard_throughput",
        &format!(
            "{{\"bench\":\"shard_throughput\",\"unit\":\"consults_per_sec\",\
             \"batch_size\":{batch_size},\
             \"batch_512\":{{\"shards\":8,\"consultations\":{BIG_BATCH},\
             \"secs\":{big_secs:.9},\"consults_per_sec\":{:.3},\
             \"one_shard_consults_per_sec\":{:.3},\
             \"scaling_8x_over_1x\":{scaling:.3},\"cores\":{cores}}},\
             \"results\":[{}]}}",
            big_rates[1],
            big_rates[0],
            json_entries.join(",")
        ),
    );
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());
    println!(
        "\nroadmap check — outcomes are shard-count-independent (deterministic routing\n\
         and per-shard ordering); throughput should scale with shards until the batch\n\
         or the hardware runs out of parallelism."
    );
}
