//! Measures consultation throughput of the sharded session engine as the
//! shard count grows: the ROADMAP's "sharding/batching of verification
//! sessions across buses" scale goal, made a number.
//!
//! For each shard count in {1, 2, 4, 8} the same batch of consultations
//! (agents 0..N, cycling over cheap §3 and §4 game specs) is fanned out
//! with `ShardedAuthority::consult_batch`, and the wall-clock rate is
//! reported. Results go to `results/shard_throughput.csv` and, in the
//! machine-readable perf-trajectory format, `results/BENCH_shard_throughput.json`.
//!
//! Usage: `cargo run -p ra-bench --release --bin shard_throughput [-- N]`
//! where `N` is the batch size (default 512; CI uses a small value).

use ra_authority::{GameSpec, InventorBehavior, ShardedAuthority, VerifierBehavior};
use ra_bench::{fmt_secs, timed, write_csv, write_json};
use ra_games::named::{battle_of_the_sexes, prisoners_dilemma, stag_hunt};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn build_batch(n: u64) -> Vec<(u64, GameSpec)> {
    let specs = [
        GameSpec::Strategic(prisoners_dilemma().to_strategic()),
        GameSpec::Bimatrix(battle_of_the_sexes()),
        GameSpec::Strategic(stag_hunt(3)),
    ];
    (0..n)
        .map(|agent| (agent, specs[(agent % specs.len() as u64) as usize].clone()))
        .collect()
}

fn main() {
    let batch_size: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("batch size must be an integer"))
        .unwrap_or(512);
    let requests = build_batch(batch_size);
    println!(
        "Sharded session engine — {batch_size} consultations per shard count, \
         honest inventor, 3 honest verifiers per shard:\n"
    );
    println!(
        "{:>7} {:>14} {:>16} {:>12} {:>12}",
        "shards", "wall time", "consults/sec", "adopted", "wire bytes"
    );
    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    for shards in SHARD_COUNTS {
        let engine = ShardedAuthority::new(
            shards,
            InventorBehavior::Honest,
            &[VerifierBehavior::Honest; 3],
        );
        let (outcomes, secs) = timed(|| engine.consult_batch(&requests));
        let adopted = outcomes.iter().filter(|o| o.adopted).count();
        assert_eq!(
            adopted,
            outcomes.len(),
            "honest infrastructure adopts everything"
        );
        let rate = batch_size as f64 / secs.max(1e-12);
        println!(
            "{:>7} {:>14} {:>16.0} {:>12} {:>12}",
            shards,
            fmt_secs(secs),
            rate,
            adopted,
            engine.total_bytes()
        );
        rows.push(format!(
            "{shards},{batch_size},{secs:.9},{rate:.3},{adopted},{}",
            engine.total_bytes()
        ));
        json_entries.push(format!(
            "{{\"shards\":{shards},\"consultations\":{batch_size},\"secs\":{secs:.9},\
             \"consults_per_sec\":{rate:.3},\"adopted\":{adopted},\"wire_bytes\":{}}}",
            engine.total_bytes()
        ));
    }
    // Fixed 512-consultation column at 8 shards, independent of the CLI
    // batch size: large batches are where the persistent worker pool pays
    // off, so the perf trajectory keeps a stable large-batch point even
    // when CI sweeps a small one.
    const BIG_BATCH: u64 = 512;
    let big_requests = build_batch(BIG_BATCH);
    let engine = ShardedAuthority::new(8, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
    let (outcomes, big_secs) = timed(|| engine.consult_batch(&big_requests));
    assert!(outcomes.iter().all(|o| o.adopted));
    let big_rate = BIG_BATCH as f64 / big_secs.max(1e-12);
    println!(
        "\nbatch_512 column — 8 shards, {BIG_BATCH} consultations: {} in \
         {big_rate:.0} consults/sec",
        fmt_secs(big_secs)
    );
    rows.push(format!(
        "8,{BIG_BATCH},{big_secs:.9},{big_rate:.3},{},{}",
        outcomes.len(),
        engine.total_bytes()
    ));

    let csv_path = write_csv(
        "shard_throughput",
        "shards,consultations,secs,consults_per_sec,adopted,wire_bytes",
        &rows,
    );
    let json_path = write_json(
        "BENCH_shard_throughput",
        &format!(
            "{{\"bench\":\"shard_throughput\",\"unit\":\"consults_per_sec\",\
             \"batch_size\":{batch_size},\
             \"batch_512\":{{\"shards\":8,\"consultations\":{BIG_BATCH},\
             \"secs\":{big_secs:.9},\"consults_per_sec\":{big_rate:.3}}},\
             \"results\":[{}]}}",
            json_entries.join(",")
        ),
    );
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());
    println!(
        "\nroadmap check — outcomes are shard-count-independent (deterministic routing\n\
         and per-shard ordering); throughput should scale with shards until the batch\n\
         or the hardware runs out of parallelism."
    );
}
