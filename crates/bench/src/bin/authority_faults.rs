//! The end-to-end fault-injection matrix: every inventor behaviour against
//! every verifier-panel composition, across all four case studies.
//!
//! The framework-level claim of the paper: with the verification procedures
//! in place, agents adopt honest advice and refuse corrupted advice — and
//! with majority-trusted verifier panels, a minority of broken verifiers
//! cannot change that.
//!
//! Usage: `cargo run -p ra-bench --release --bin authority_faults`

use ra_authority::{
    GameSpec, Inventor, InventorBehavior, Party, RationalityAuthority, VerifierBehavior,
};
use ra_bench::write_csv;
use ra_exact::rat;
use ra_games::named::{battle_of_the_sexes, prisoners_dilemma};
use ra_solvers::ParticipationParams;

fn specs() -> Vec<(&'static str, GameSpec)> {
    vec![
        (
            "strategic(PD)",
            GameSpec::Strategic(prisoners_dilemma().to_strategic()),
        ),
        ("bimatrix(BoS)", GameSpec::Bimatrix(battle_of_the_sexes())),
        (
            "participation",
            GameSpec::Participation(ParticipationParams::paper_example()),
        ),
        (
            "parallel-links",
            GameSpec::ParallelLinks {
                current_loads: vec![rat(5, 1), rat(2, 1), rat(0, 1)],
                own_load: rat(3, 1),
                expected_future_load: rat(2, 1),
                expected_future_agents: 4,
            },
        ),
    ]
}

fn panels() -> Vec<(&'static str, Vec<VerifierBehavior>)> {
    use VerifierBehavior::*;
    vec![
        ("3 honest", vec![Honest; 3]),
        (
            "3 honest + 2 bought",
            vec![Honest, Honest, Honest, AlwaysAccept, AlwaysAccept],
        ),
        (
            "3 honest + 2 saboteurs",
            vec![Honest, Honest, Honest, AlwaysReject, AlwaysReject],
        ),
        (
            "1 honest + 1 flaky",
            vec![
                Honest,
                Random {
                    accept_per_mille: 500,
                },
            ],
        ),
    ]
}

fn main() {
    println!("End-to-end fault matrix (adopted? expected: honest yes, corrupt no):\n");
    println!(
        "{:<16} {:<24} {:>10} {:>10}",
        "game", "verifier panel", "honest", "corrupt"
    );
    let mut rows = Vec::new();
    let mut violations = 0;
    for (game_name, spec) in specs() {
        for (panel_name, panel) in panels() {
            let mut outcomes = Vec::new();
            for behavior in [InventorBehavior::Honest, InventorBehavior::Corrupt] {
                let mut authority = RationalityAuthority::new(Inventor::new(0, behavior), &panel);
                let outcome = authority.consult(0, &spec);
                outcomes.push(outcome.adopted);
            }
            let (honest_ok, corrupt_ok) = (outcomes[0], outcomes[1]);
            // Majority-honest panels must adopt honest and refuse corrupt;
            // the tie panel (1 honest + 1 flaky) may legitimately refuse
            // honest advice (ties reject) but must never adopt corrupt
            // advice when the honest verifier rejects it... a flaky accept +
            // honest reject ties → reject. So corrupt adoption is a hard
            // violation everywhere; honest adoption is required only with
            // an honest strict majority.
            let majority_honest = panel_name != "1 honest + 1 flaky";
            let violation = (majority_honest && !honest_ok) || corrupt_ok;
            if violation {
                violations += 1;
            }
            println!(
                "{:<16} {:<24} {:>10} {:>10}{}",
                game_name,
                panel_name,
                if honest_ok { "ADOPT" } else { "refuse" },
                if corrupt_ok { "ADOPT(!)" } else { "refuse" },
                if violation { "   <-- VIOLATION" } else { "" }
            );
            rows.push(format!("{game_name},{panel_name},{honest_ok},{corrupt_ok}"));
        }
    }
    let path = write_csv(
        "authority_faults",
        "game,panel,honest_adopted,corrupt_adopted",
        &rows,
    );
    println!("\nwrote {}", path.display());

    // Reputation dynamics under repeated consultations.
    println!("\nreputation after 20 honest consultations with a saboteur on the panel:");
    let mut authority = RationalityAuthority::new(
        Inventor::new(0, InventorBehavior::Honest),
        &[
            VerifierBehavior::Honest,
            VerifierBehavior::Honest,
            VerifierBehavior::AlwaysReject,
        ],
    );
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    for round in 0..20 {
        authority.consult(round, &spec);
    }
    for i in 0..3u64 {
        let v = Party::Verifier(i);
        println!(
            "  {v}: score {:>3} {}",
            authority.reputation().score(v),
            if authority.reputation().is_trusted(v) {
                "(trusted)"
            } else {
                "(EXCLUDED)"
            }
        );
    }
    assert!(!authority.reputation().is_trusted(Party::Verifier(2)));
    assert_eq!(violations, 0, "framework-level guarantee violated");
    println!("\npaper check — 0 violations across the whole matrix.");
}
