//! Regenerates the Remark 3 measurement: P2 oracle query counts as a
//! function of the opponent's support size.
//!
//! Remark 3: "In the case of large supports, e.g., θ(n), our verifier can
//! test the equilibrium in a constant number of queries … The proposed test
//! is always sublinear in n, except for the case of constant size
//! supports." Shape to reproduce: queries ≈ 2k / (1 − (1 − s/m)²) — flat
//! and small for s = θ(m), growing toward O(m) only as s → O(1).
//!
//! Usage: `cargo run -p ra-bench --release --bin remark3_queries`

use rand::rngs::StdRng;
use rand::SeedableRng;

use ra_bench::{game_with_support_size, write_csv};
use ra_exact::Rational;
use ra_games::{MixedProfile, MixedStrategy};
use ra_proofs::{honest_row_advice, verify_private_advice, HonestOracle, P2Config, P2Outcome};

fn main() {
    let m = 51usize;
    let trials = 200u64;
    let config = P2Config {
        required_conclusive: 3,
        max_queries: 100_000,
    };
    println!(
        "Remark 3 — P2 query counts, m = {m} column strategies, {trials} trials, \
         {} conclusive tests required:\n",
        config.required_conclusive
    );
    println!(
        "{:>9} {:>14} {:>16} {:>16}",
        "support", "mean queries", "expected model", "max observed"
    );
    let mut rows = Vec::new();
    for s in [1usize, 3, 5, 9, 17, 25, 37, 51] {
        let game = game_with_support_size(m, s);
        let mut probs = vec![Rational::zero(); m];
        for p in probs.iter_mut().take(s) {
            *p = Rational::new(1, s as i64);
        }
        let profile = MixedProfile {
            row: MixedStrategy::try_new(probs.clone()).unwrap(),
            col: MixedStrategy::try_new(probs).unwrap(),
        };
        assert!(game.is_nash(&profile), "constructed equilibrium (s = {s})");
        let advice = honest_row_advice(&game, &profile);
        let mut total_queries = 0u64;
        let mut max_queries = 0u64;
        for t in 0..trials {
            let mut oracle = HonestOracle::new(profile.col.support());
            let mut rng = StdRng::seed_from_u64(t * 7919 + s as u64);
            match verify_private_advice(&game, &advice, &mut oracle, &mut rng, &config) {
                P2Outcome::Accepted { transcript, .. } => {
                    let q = transcript.num_queries();
                    total_queries += q;
                    max_queries = max_queries.max(q);
                }
                other => panic!("honest advice must be accepted, got {other:?}"),
            }
        }
        let mean = total_queries as f64 / trials as f64;
        // Model: a pair is conclusive with prob 1 − (1 − s/m)²; 2 queries
        // per pair, k conclusive pairs needed.
        let p_conclusive = 1.0 - (1.0 - s as f64 / m as f64).powi(2);
        let expected = 2.0 * config.required_conclusive as f64 / p_conclusive;
        println!(
            "{:>9} {:>14.1} {:>16.1} {:>16}",
            s, mean, expected, max_queries
        );
        rows.push(format!("{s},{mean:.3},{expected:.3},{max_queries}"));
    }
    let path = write_csv(
        "remark3",
        "support_size,mean_queries,model_queries,max_queries",
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check — queries are ~constant (≈ 2k) for θ(m) supports and grow only\n\
         as the support shrinks toward constant size, exactly Remark 3's regime split."
    );
}
