//! Regenerates Figure 7: percentage of iterations in which the inventor's
//! statistics-informed advice yields a strictly better final makespan than
//! the greedy least-loaded strategy.
//!
//! Default: the sparse "quick" sweep (same agents/loads/iterations as the
//! paper, 15 representative link counts — minutes of CPU). `--full` runs
//! every m in 2..=500 like the paper's chart.
//!
//! Usage: `cargo run -p ra-bench --release --bin fig7 [--full]`

use ra_bench::write_csv;
use ra_congestion::{run_fig7, Fig7Config};

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let config = if full {
        Fig7Config::paper()
    } else {
        Fig7Config::quick()
    };
    println!(
        "Fig. 7: {} agents, loads U[{}, {}], {} iterations per point, {} link counts{}",
        config.num_agents,
        config.load_range.0,
        config.load_range.1,
        config.iterations,
        config.link_counts.len(),
        if full {
            " (FULL sweep)"
        } else {
            " (quick sweep; pass --full for 2..=500)"
        },
    );
    println!(
        "\n{:>5} {:>20} {:>18} {:>8} {:>16}",
        "m", "inventor better %", "greedy better %", "ties %", "mean ratio g/i"
    );
    let points = run_fig7(&config);
    let mut rows = Vec::new();
    for p in &points {
        println!(
            "{:>5} {:>20.1} {:>18.1} {:>8.1} {:>16.4}",
            p.m,
            p.inventor_strictly_better_pct,
            p.greedy_strictly_better_pct,
            p.tie_pct,
            p.mean_makespan_ratio
        );
        rows.push(format!(
            "{},{:.2},{:.2},{:.2},{:.5}",
            p.m,
            p.inventor_strictly_better_pct,
            p.greedy_strictly_better_pct,
            p.tie_pct,
            p.mean_makespan_ratio
        ));
    }
    let path = write_csv(
        "fig7",
        "m,inventor_strictly_better_pct,greedy_strictly_better_pct,tie_pct,mean_makespan_ratio",
        &rows,
    );
    println!("\nwrote {}", path.display());

    // The paper's qualitative claims, checked programmatically:
    let large_m: Vec<_> = points.iter().filter(|p| p.m >= 100).collect();
    if !large_m.is_empty() {
        let min_large = large_m
            .iter()
            .map(|p| p.inventor_strictly_better_pct)
            .fold(f64::MAX, f64::min);
        println!(
            "paper check — for m ≥ 100 the inventor wins ≥ {min_large:.0}% of iterations \
             (paper: 'vast majority', 99-100%)"
        );
    }
}
