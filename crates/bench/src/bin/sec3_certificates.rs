//! Regenerates the §3 measurements: kernel certificate checking vs
//! exhaustive equilibrium search, as the strategy space grows.
//!
//! The §3 proof scheme enumerates all profiles; its value is that the
//! *checking* of an `isNash` claim costs only `Σ_i (|A_i| − 1)` utility
//! comparisons while *finding* equilibria costs the whole profile space
//! times that. Maximality proofs necessarily touch every profile but with
//! O(1) witness checks each, still ~`Σ|A_i|`-times cheaper than the search.
//!
//! Usage: `cargo run -p ra-bench --release --bin sec3_certificates`

use ra_bench::{fmt_secs, timed, write_csv};
use ra_games::GameGenerator;
use ra_proofs::kernel::{check_prehashed, game_fingerprint};
use ra_proofs::{prove_is_nash, prove_max_nash};
use ra_solvers::analyze_pure_nash;

fn main() {
    println!("§3 — certificate checking vs exhaustive search (2 agents, s strategies each):\n");
    println!(
        "{:>4} {:>10} {:>12} {:>14} {:>14} {:>12} {:>12}",
        "s", "profiles", "search", "nash check", "max check", "nash lkps", "proof size"
    );
    let mut rows = Vec::new();
    for s in [2usize, 4, 8, 16, 32, 64] {
        // A uniform random game has a pure equilibrium with probability
        // ≈ 1 − 1/e; scan seeds until one does.
        let (game, analysis, t_search) = (0..50u64)
            .find_map(|seed| {
                let game = GameGenerator::seeded(s as u64 * 100 + seed)
                    .strategic(vec![s, s], -1000..=1000);
                let (analysis, t) = timed(|| analyze_pure_nash(&game));
                (!analysis.equilibria.is_empty()).then_some((game, analysis, t))
            })
            .expect("a seed with a pure equilibrium exists");
        let eq = analysis.equilibria[0].clone();
        // The verifier hashes the game once when it receives it; each
        // certificate check afterwards is pure kernel work.
        let fp = game_fingerprint(&game);
        let nash_proof = prove_is_nash(eq.clone());
        let (nash_checked, t_nash) = timed(|| check_prehashed(&game, fp, &nash_proof).unwrap());
        let max_candidate = analysis.maximal.first().cloned();
        let (max_cost, t_max, proof_size) = match max_candidate {
            Some(c) => {
                let (proof, _) = timed(|| prove_max_nash(&game, &c).unwrap());
                let size = proof.size();
                let (checked, t) = timed(|| check_prehashed(&game, fp, &proof).unwrap());
                (checked.cost().utility_lookups, t, size)
            }
            None => (0, 0.0, 0),
        };
        let _ = max_cost;
        println!(
            "{s:>4} {:>10} {:>12} {:>14} {:>14} {:>12} {:>12}",
            game.num_profiles(),
            fmt_secs(t_search),
            fmt_secs(t_nash),
            fmt_secs(t_max),
            nash_checked.cost().utility_lookups,
            proof_size
        );
        rows.push(format!(
            "{s},{},{t_search:.9},{t_nash:.9},{t_max:.9},{},{proof_size}",
            game.num_profiles(),
            nash_checked.cost().utility_lookups
        ));
    }
    let path = write_csv(
        "sec3",
        "strategies,profiles,search_secs,nash_check_secs,max_check_secs,nash_check_lookups,max_proof_size",
        &rows,
    );
    println!("\nwrote {}", path.display());
    println!(
        "\npaper check — an isNash certificate checks in Θ(s) lookups while the search\n\
         costs Θ(s²·s) = Θ(s³) lookups for 2 agents; the measured gap widens accordingly.\n\
         Maximality certificates cost Θ(s²) (one witness per profile) — still a factor\n\
         Θ(s) below the search, and the checker never trusts the inventor's labels."
    );
}
