//! Measures the cost and the payoff of the cross-shard reputation plane:
//! consultation throughput under `ReputationPolicy::Isolated` vs
//! `ReputationPolicy::Gossip` vs `ReputationPolicy::Adaptive` at 1/2/4/8
//! shards, the *control-plane* bytes the gossip merges put on the
//! dedicated inter-shard bus (per consultation — the Lemma 1 accounting
//! now covers its own coordination traffic), and how many consultations /
//! how many total wire bytes it takes to exclude a persistently deviant
//! verifier on *every* shard under each policy.
//!
//! The acceptance bars: gossip throughput ≥ 0.9× isolated at 8 shards
//! (ISSUE 3 — the epoch merge is amortized off the consult hot path), and
//! gossip bytes per consultation non-zero under `Gossip`/`Adaptive` but
//! exactly zero under `Isolated` (ISSUE 4 — merges are real framed
//! sends). Results go to `results/reputation_gossip.csv` and, in the
//! machine-readable perf-trajectory format,
//! `results/BENCH_reputation_gossip.json` (schema: docs/BENCHMARKS.md).
//!
//! Usage: `cargo run -p ra-bench --release --bin reputation_gossip [-- N [EVERY]]`
//! where `N` is the batch size (default 512; CI uses a small value) and
//! `EVERY` the gossip epoch in consultations (default 32).

use std::sync::Arc;

use ra_authority::{
    GameSpec, InventorBehavior, Party, ReputationPolicy, ShardedAuthority, VerifierBehavior,
};
use ra_bench::{fmt_secs, timed, write_csv, write_json};
use ra_games::named::{battle_of_the_sexes, prisoners_dilemma, stag_hunt};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Hard cap on the exclusion experiment (the isolated engine may need a
/// dissent on every shard; this bounds pathological routing).
const EXCLUSION_CAP: u64 = 10_000;

fn build_batch(n: u64) -> Vec<(u64, Arc<GameSpec>)> {
    let specs = [
        GameSpec::Strategic(prisoners_dilemma().to_strategic()),
        GameSpec::Bimatrix(battle_of_the_sexes()),
        GameSpec::Strategic(stag_hunt(3)),
    ]
    .map(Arc::new);
    (0..n)
        .map(|agent| {
            (
                agent,
                Arc::clone(&specs[(agent % specs.len() as u64) as usize]),
            )
        })
        .collect()
}

fn policy_name(policy: ReputationPolicy) -> &'static str {
    match policy {
        ReputationPolicy::Isolated => "isolated",
        ReputationPolicy::Gossip { .. } => "gossip",
        ReputationPolicy::Adaptive { .. } => "adaptive",
    }
}

/// The three policies compared, at epoch `every`: the adaptive variant
/// checks four times per epoch and syncs early on 4+ dissenting votes.
fn policies(every: usize) -> [ReputationPolicy; 3] {
    let check_every = if every % 4 == 0 { every / 4 } else { 1 };
    [
        ReputationPolicy::Isolated,
        ReputationPolicy::Gossip { every },
        ReputationPolicy::Adaptive {
            every,
            check_every,
            burst: 4,
        },
    ]
}

/// Consultations (round-robin agents) and total wire bytes (consultation
/// plane + delivered gossip frames) until `Party::Verifier(2)` — an
/// `AlwaysReject` saboteur against an honest inventor — is distrusted on
/// every shard, or `None` if that never happens within `EXCLUSION_CAP`
/// (reported as -1 in the CSV and `null` in the JSON, so a propagation
/// regression shows up as a visibly broken data point, not a big number).
fn cost_to_global_exclusion(shards: usize, policy: ReputationPolicy) -> Option<(u64, usize)> {
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ];
    let engine = ShardedAuthority::with_policy(shards, InventorBehavior::Honest, &panel, policy);
    let saboteur = Party::Verifier(2);
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    for consultations in 1..=EXCLUSION_CAP {
        engine.consult(consultations - 1, &spec);
        let excluded_everywhere = (0..engine.shard_count())
            .all(|s| engine.with_shard(s, |a| !a.reputation().is_trusted(saboteur)));
        if excluded_everywhere {
            let stats = engine.shard_stats();
            return Some((consultations, stats.total_bytes + stats.gossip_bytes));
        }
    }
    None
}

fn main() {
    let mut args = std::env::args().skip(1);
    let batch_size: u64 = args
        .next()
        .map(|s| s.parse().expect("batch size must be an integer"))
        .unwrap_or(512);
    let every: usize = args
        .next()
        .map(|s| s.parse().expect("gossip epoch must be an integer"))
        .unwrap_or(32);
    // A batch smaller than the epoch would never cross a merge boundary,
    // making every gossip column vacuously zero; clamp so the smallest
    // documented invocations still measure the control plane.
    let every = every.clamp(1, batch_size.max(1) as usize);
    let requests = build_batch(batch_size);
    println!(
        "Reputation plane — {batch_size} consultations per configuration, gossip \
         epoch {every}, honest inventor, 3 honest verifiers per shard:\n"
    );
    println!(
        "{:>7} {:>9} {:>12} {:>14} {:>13} {:>11} {:>16} {:>16}",
        "shards",
        "policy",
        "wall time",
        "consults/sec",
        "gossip bytes",
        "b/consult",
        "excluded after",
        "bytes to excl."
    );
    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    let mut rates = std::collections::HashMap::new();
    for shards in SHARD_COUNTS {
        for policy in policies(every) {
            let engine = ShardedAuthority::with_policy(
                shards,
                InventorBehavior::Honest,
                &[VerifierBehavior::Honest; 3],
                policy,
            );
            let (outcomes, secs) = timed(|| engine.consult_batch(&requests));
            assert!(
                outcomes.iter().all(|o| o.adopted),
                "honest infrastructure adopts everything"
            );
            let stats = engine.shard_stats();
            // ISSUE 4 acceptance: merges are framed sends, visible to the
            // accounting exactly when a gossip policy is active.
            assert_eq!(
                stats.gossip_bytes > 0,
                policy != ReputationPolicy::Isolated,
                "gossip byte accounting does not match the policy"
            );
            let gossip_per_consult = stats.gossip_bytes as f64 / batch_size as f64;
            let rate = batch_size as f64 / secs.max(1e-12);
            rates.insert((shards, policy_name(policy)), rate);
            let exclusion = cost_to_global_exclusion(shards, policy);
            let (excl_csv, excl_bytes_csv) =
                exclusion.map_or((-1, -1), |(n, b)| (n as i64, b as i64));
            let excl_json = exclusion.map_or_else(|| String::from("null"), |(n, _)| n.to_string());
            let excl_bytes_json =
                exclusion.map_or_else(|| String::from("null"), |(_, b)| b.to_string());
            println!(
                "{:>7} {:>9} {:>12} {:>14.0} {:>13} {:>11.1} {:>16} {:>16}",
                shards,
                policy_name(policy),
                fmt_secs(secs),
                rate,
                stats.gossip_bytes,
                gossip_per_consult,
                exclusion.map_or_else(|| String::from("never"), |(n, _)| n.to_string()),
                exclusion.map_or_else(|| String::from("-"), |(_, b)| b.to_string()),
            );
            rows.push(format!(
                "{shards},{},{batch_size},{every},{secs:.9},{rate:.3},{},{gossip_per_consult:.3},\
                 {excl_csv},{excl_bytes_csv}",
                policy_name(policy),
                stats.gossip_bytes,
            ));
            json_entries.push(format!(
                "{{\"shards\":{shards},\"policy\":\"{}\",\"consultations\":{batch_size},\
                 \"gossip_every\":{every},\"secs\":{secs:.9},\"consults_per_sec\":{rate:.3},\
                 \"gossip_bytes\":{},\"gossip_bytes_per_consult\":{gossip_per_consult:.3},\
                 \"global_exclusion_after\":{excl_json},\
                 \"bytes_to_global_exclusion\":{excl_bytes_json}}}",
                policy_name(policy),
                stats.gossip_bytes,
            ));
        }
    }
    let ratio_at_8 = rates[&(8usize, "gossip")] / rates[&(8usize, "isolated")];

    // Fixed 512-consultation column at 8 shards, independent of the CLI
    // batch size: the worker fan-out regression that motivated the
    // persistent shard pool only shows at large batches (many epoch
    // chunks), so the perf trajectory needs a stable large-batch point
    // even when CI sweeps a small one. Also measures the versioned-pull
    // payoff: an idle re-sync after the batch must ship zero pull bytes.
    const BIG_BATCH: u64 = 512;
    const BIG_EVERY: usize = 32;
    /// Fresh engines per repeat; the best (smallest) wall time of the
    /// repeats is reported, so a scheduler hiccup in one run does not
    /// masquerade as a fan-out regression in the trajectory.
    const BIG_REPEATS: usize = 3;
    let big_requests = build_batch(BIG_BATCH);
    let rate_512 = |policy| {
        let mut best: Option<(ShardedAuthority, f64)> = None;
        for _ in 0..BIG_REPEATS {
            let engine = ShardedAuthority::with_policy(
                8,
                InventorBehavior::Honest,
                &[VerifierBehavior::Honest; 3],
                policy,
            );
            let (outcomes, secs) = timed(|| engine.consult_batch(&big_requests));
            assert!(outcomes.iter().all(|o| o.adopted));
            let improved = match &best {
                None => true,
                Some((_, best_secs)) => secs < *best_secs,
            };
            if improved {
                best = Some((engine, secs));
            }
        }
        let (engine, secs) = best.expect("at least one repeat ran");
        (engine, BIG_BATCH as f64 / secs.max(1e-12), secs)
    };
    let (_, isolated_512, iso_secs) = rate_512(ReputationPolicy::Isolated);
    let (gossip_engine, gossip_512, gos_secs) =
        rate_512(ReputationPolicy::Gossip { every: BIG_EVERY });
    let ratio_512 = gossip_512 / isolated_512;
    // Snapshot the batch's own control-plane bytes before the idle-sync
    // experiment below adds its (post-measurement) push frames, so the
    // archived row stays comparable with the sweep rows.
    let gossip_bytes_512 = gossip_engine.shard_stats().gossip_bytes;
    // Idle-sync pull bytes: flush the tail of the batch, then re-sync an
    // already-converged engine — the hub answers every watermarked pull
    // with nothing, so the delta must be exactly zero.
    gossip_engine.sync_reputation();
    let bus = gossip_engine.gossip_bus().expect("gossip engine has a bus");
    let pull_bytes = |bus: &dyn ra_authority::Transport| {
        (0..8)
            .map(|s| bus.bytes_between(ra_authority::GOSSIP_HUB, Party::Shard(s)))
            .sum::<usize>()
    };
    let before_idle = pull_bytes(bus);
    gossip_engine.sync_reputation();
    let idle_sync_pull_bytes = pull_bytes(bus) - before_idle;
    println!(
        "\nbatch_512 column — 8 shards, {BIG_BATCH} consultations, epoch {BIG_EVERY}: \
         isolated {isolated_512:.0}/s, gossip {gossip_512:.0}/s \
         (ratio {ratio_512:.2}x), idle-sync pull bytes {idle_sync_pull_bytes}"
    );
    rows.push(format!(
        "8,isolated,{BIG_BATCH},{BIG_EVERY},{iso_secs:.9},{isolated_512:.3},0,0.000,-1,-1"
    ));
    rows.push(format!(
        "8,gossip,{BIG_BATCH},{BIG_EVERY},{gos_secs:.9},{gossip_512:.3},\
         {gossip_bytes_512},{:.3},-1,-1",
        gossip_bytes_512 as f64 / BIG_BATCH as f64,
    ));

    let csv_path = write_csv(
        "reputation_gossip",
        "shards,policy,consultations,gossip_every,secs,consults_per_sec,gossip_bytes,\
         gossip_bytes_per_consult,global_exclusion_after,bytes_to_global_exclusion",
        &rows,
    );
    let json_path = write_json(
        "BENCH_reputation_gossip",
        &format!(
            "{{\"bench\":\"reputation_gossip\",\"unit\":\"consults_per_sec\",\
             \"batch_size\":{batch_size},\"gossip_every\":{every},\
             \"gossip_over_isolated_at_8_shards\":{ratio_at_8:.4},\
             \"batch_512\":{{\"shards\":8,\"consultations\":{BIG_BATCH},\
             \"gossip_every\":{BIG_EVERY},\
             \"isolated_consults_per_sec\":{isolated_512:.3},\
             \"gossip_consults_per_sec\":{gossip_512:.3},\
             \"gossip_over_isolated_at_8_shards\":{ratio_512:.4},\
             \"idle_sync_pull_bytes\":{idle_sync_pull_bytes}}},\
             \"results\":[{}]}}",
            json_entries.join(",")
        ),
    );
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());
    println!(
        "\nroadmap check — gossip/isolated throughput at 8 shards: {ratio_at_8:.2}x \
         at the swept batch size, {ratio_512:.2}x at 512 (the `batch_512` \
         trajectory column; the persistent shard pool removed the per-epoch \
         worker respawns that used to hold this near 0.65x). The consult hot \
         path still only pays an atomic bump, merge frames are *measured* on \
         the inter-shard bus — and pulls are version-vectored, so an \
         up-to-date shard pays {idle_sync_pull_bytes} pull bytes instead of \
         re-receiving the merged snapshot. The adaptive policy trades a few \
         early merges for faster engine-wide exclusion of deviant verifiers."
    );
}
