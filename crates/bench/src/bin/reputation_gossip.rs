//! Measures the cost and the payoff of the cross-shard reputation plane:
//! consultation throughput under `ReputationPolicy::Isolated` vs
//! `ReputationPolicy::Gossip` at 1/2/4/8 shards, and how many
//! consultations it takes to exclude a persistently deviant verifier on
//! *every* shard under each policy.
//!
//! The acceptance bar (ISSUE 3): gossip throughput ≥ 0.9× isolated at 8
//! shards — the epoch merge is amortized off the consult hot path, so the
//! only per-consultation overhead is one atomic counter bump. Results go
//! to `results/reputation_gossip.csv` and, in the machine-readable
//! perf-trajectory format, `results/BENCH_reputation_gossip.json`.
//!
//! Usage: `cargo run -p ra-bench --release --bin reputation_gossip [-- N [EVERY]]`
//! where `N` is the batch size (default 512; CI uses a small value) and
//! `EVERY` the gossip epoch in consultations (default 32).

use ra_authority::{
    GameSpec, InventorBehavior, Party, ReputationPolicy, ShardedAuthority, VerifierBehavior,
};
use ra_bench::{fmt_secs, timed, write_csv, write_json};
use ra_games::named::{battle_of_the_sexes, prisoners_dilemma, stag_hunt};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Hard cap on the exclusion experiment (the isolated engine may need a
/// dissent on every shard; this bounds pathological routing).
const EXCLUSION_CAP: u64 = 10_000;

fn build_batch(n: u64) -> Vec<(u64, GameSpec)> {
    let specs = [
        GameSpec::Strategic(prisoners_dilemma().to_strategic()),
        GameSpec::Bimatrix(battle_of_the_sexes()),
        GameSpec::Strategic(stag_hunt(3)),
    ];
    (0..n)
        .map(|agent| (agent, specs[(agent % specs.len() as u64) as usize].clone()))
        .collect()
}

fn policy_name(policy: ReputationPolicy) -> &'static str {
    match policy {
        ReputationPolicy::Isolated => "isolated",
        ReputationPolicy::Gossip { .. } => "gossip",
    }
}

/// Consultations (round-robin agents) until `Party::Verifier(2)` — an
/// `AlwaysReject` saboteur against an honest inventor — is distrusted on
/// every shard, or `None` if that never happens within `EXCLUSION_CAP`
/// (reported as -1 in the CSV and `null` in the JSON, so a propagation
/// regression shows up as a visibly broken data point, not a big number).
fn consultations_to_global_exclusion(shards: usize, policy: ReputationPolicy) -> Option<u64> {
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ];
    let engine = ShardedAuthority::with_policy(shards, InventorBehavior::Honest, &panel, policy);
    let saboteur = Party::Verifier(2);
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    for consultations in 1..=EXCLUSION_CAP {
        engine.consult(consultations - 1, &spec);
        let excluded_everywhere = (0..engine.shard_count())
            .all(|s| engine.with_shard(s, |a| !a.reputation().is_trusted(saboteur)));
        if excluded_everywhere {
            return Some(consultations);
        }
    }
    None
}

fn main() {
    let mut args = std::env::args().skip(1);
    let batch_size: u64 = args
        .next()
        .map(|s| s.parse().expect("batch size must be an integer"))
        .unwrap_or(512);
    let every: usize = args
        .next()
        .map(|s| s.parse().expect("gossip epoch must be an integer"))
        .unwrap_or(32);
    let requests = build_batch(batch_size);
    println!(
        "Reputation plane — {batch_size} consultations per configuration, gossip \
         epoch {every}, honest inventor, 3 honest verifiers per shard:\n"
    );
    println!(
        "{:>7} {:>9} {:>14} {:>16} {:>22}",
        "shards", "policy", "wall time", "consults/sec", "global exclusion after"
    );
    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    let mut rates = std::collections::HashMap::new();
    for shards in SHARD_COUNTS {
        for policy in [
            ReputationPolicy::Isolated,
            ReputationPolicy::Gossip { every },
        ] {
            let engine = ShardedAuthority::with_policy(
                shards,
                InventorBehavior::Honest,
                &[VerifierBehavior::Honest; 3],
                policy,
            );
            let (outcomes, secs) = timed(|| engine.consult_batch(&requests));
            assert!(
                outcomes.iter().all(|o| o.adopted),
                "honest infrastructure adopts everything"
            );
            let rate = batch_size as f64 / secs.max(1e-12);
            rates.insert((shards, policy_name(policy)), rate);
            let excluded_after = consultations_to_global_exclusion(shards, policy);
            let excluded_csv = excluded_after.map_or(-1, |n| n as i64);
            let excluded_json =
                excluded_after.map_or_else(|| String::from("null"), |n| n.to_string());
            println!(
                "{:>7} {:>9} {:>14} {:>16.0} {:>22}",
                shards,
                policy_name(policy),
                fmt_secs(secs),
                rate,
                excluded_after.map_or_else(|| String::from("never"), |n| n.to_string())
            );
            rows.push(format!(
                "{shards},{},{batch_size},{every},{secs:.9},{rate:.3},{excluded_csv}",
                policy_name(policy)
            ));
            json_entries.push(format!(
                "{{\"shards\":{shards},\"policy\":\"{}\",\"consultations\":{batch_size},\
                 \"gossip_every\":{every},\"secs\":{secs:.9},\"consults_per_sec\":{rate:.3},\
                 \"global_exclusion_after\":{excluded_json}}}",
                policy_name(policy)
            ));
        }
    }
    let ratio_at_8 = rates[&(8usize, "gossip")] / rates[&(8usize, "isolated")];
    let csv_path = write_csv(
        "reputation_gossip",
        "shards,policy,consultations,gossip_every,secs,consults_per_sec,global_exclusion_after",
        &rows,
    );
    let json_path = write_json(
        "BENCH_reputation_gossip",
        &format!(
            "{{\"bench\":\"reputation_gossip\",\"unit\":\"consults_per_sec\",\
             \"batch_size\":{batch_size},\"gossip_every\":{every},\
             \"gossip_over_isolated_at_8_shards\":{ratio_at_8:.4},\"results\":[{}]}}",
            json_entries.join(",")
        ),
    );
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());
    println!(
        "\nroadmap check — gossip/isolated throughput at 8 shards: {ratio_at_8:.2}x \
         (bar: ≥ 0.90x; the merge is amortized at epoch boundaries, so the hot \
         path only pays an atomic bump). Global exclusion of a deviant verifier \
         needs every shard to re-learn the lesson under isolated, one epoch under \
         gossip."
    );
}
