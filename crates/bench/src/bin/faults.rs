//! Fault-injection benchmark over [`SimNet`]: tail latency under
//! realistic RTT/loss cells, the lossy gossip campaign's adoption and
//! byte economics, and the partition/heal reconciliation cost.
//!
//! Three sections, all on the virtual clock (ticks, not wall time — the
//! numbers are machine-independent and seed-deterministic):
//!
//! 1. **RTT cells** — request/reply exchanges between two endpoints over
//!    a link profile cross product (LAN/WAN/satellite latency windows ×
//!    loss rates), with a retransmit timer of `2 × latency_max` per lost
//!    frame. Reported as p50/p95/p99 round-trip virtual ticks plus
//!    retry and byte counters.
//! 2. **Campaign cells** — the saboteur-panel consultation campaign from
//!    the scenario suite run over a lossy gossip hub at increasing loss
//!    rates: adopted rate, exclusion spread, delivered vs accounted
//!    gossip bytes.
//! 3. **Reconciliation** — a scripted partition/heal at the gossip-plane
//!    level: bytes shipped to reconcile a stalled watermark vs the
//!    full-snapshot pull a fresh shard needs for the same hub state.
//!
//! The seed comes from `RA_SCENARIO_SEED` (decimal) when set — the same
//! replay handle the scenario suite uses — and defaults to the same
//! fixed campaign seed.
//!
//! Results go to `results/faults.csv` and, schema-gated in CI,
//! `BENCH_faults.json` at the workspace root.
//!
//! Usage: `cargo run -p ra-bench --release --bin faults [-- N]` where
//! `N` is the exchanges-per-RTT-cell budget (default 400).

use std::sync::Arc;

use ra_authority::{
    Bus, CertCacheConfig, DecayingPnCounterMap, GameSpec, GossipPlane, InventorBehavior,
    LinkProfile, Message, Party, ReputationConfig, ReputationDecay, ReputationPolicy,
    ShardedAuthority, SimNet, SimNetConfig, Transport, TransportSite, VerifierBehavior,
    VersionVector, GOSSIP_HUB,
};
use ra_bench::{write_csv, write_json};
use ra_games::named::prisoners_dilemma;

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn seed() -> u64 {
    std::env::var("RA_SCENARIO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDEC0DE)
}

/// One measured RTT cell.
struct RttCell {
    profile: &'static str,
    loss: f64,
    latency_min: u64,
    latency_max: u64,
    exchanges: u64,
    retries: u64,
    p50_ticks: u64,
    p95_ticks: u64,
    p99_ticks: u64,
    delivered_bytes: usize,
    total_bytes: usize,
}

/// Runs one RTT cell: `exchanges` query/reply round trips between two
/// endpoints, with a retransmit timer of `2 × latency_max` charged to the
/// virtual clock for every lost frame.
fn run_rtt_cell(
    profile: &'static str,
    link: LinkProfile,
    exchanges: u64,
    cell_seed: u64,
) -> RttCell {
    let net = SimNet::new(SimNetConfig {
        seed: cell_seed,
        default_link: link,
        ..SimNetConfig::default()
    });
    let a = Party::Agent(1);
    let b = Party::Agent(2);
    let ep_a = net.register(a);
    let ep_b = net.register(b);
    let rto = 2 * link.latency_max.max(1);
    let mut retries = 0u64;
    let mut rtts: Vec<u64> = Vec::with_capacity(exchanges as usize);
    for game_id in 0..exchanges {
        let t0 = net.now();
        // Query leg, with retransmits until the responder holds the frame.
        loop {
            net.send(a, b, Message::AdviceRequest { game_id })
                .expect("registered");
            net.settle();
            if !ep_b.drain().is_empty() {
                break;
            }
            retries += 1;
            net.advance_to(net.now() + rto);
        }
        // Reply leg, same discipline.
        loop {
            net.send(b, a, Message::AdviceRequest { game_id })
                .expect("registered");
            net.settle();
            if !ep_a.drain().is_empty() {
                break;
            }
            retries += 1;
            net.advance_to(net.now() + rto);
        }
        rtts.push(net.now() - t0);
    }
    rtts.sort_unstable();
    RttCell {
        profile,
        loss: link.drop_prob,
        latency_min: link.latency_min,
        latency_max: link.latency_max,
        exchanges,
        retries,
        p50_ticks: percentile(&rtts, 0.50),
        p95_ticks: percentile(&rtts, 0.95),
        p99_ticks: percentile(&rtts, 0.99),
        delivered_bytes: net.delivered_bytes(),
        total_bytes: net.total_bytes(),
    }
}

/// One measured campaign cell.
struct CampaignCell {
    loss: f64,
    consults: u64,
    adopted: u64,
    excluded_shards: usize,
    gossip_delivered_bytes: usize,
    gossip_total_bytes: usize,
}

/// The scenario suite's saboteur campaign at gossip loss rate `loss`.
fn run_campaign_cell(loss: f64, consults: u64, cell_seed: u64) -> CampaignCell {
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject,
    ];
    let engine = ShardedAuthority::with_transports(
        2,
        InventorBehavior::Honest,
        &panel,
        ReputationConfig {
            policy: ReputationPolicy::Gossip { every: 2 },
            ..ReputationConfig::default()
        },
        CertCacheConfig::default(),
        &|site| match site {
            TransportSite::GossipHub => {
                let net = SimNet::new(SimNetConfig {
                    seed: cell_seed,
                    default_link: LinkProfile::lossy(loss),
                    ..SimNetConfig::default()
                });
                Arc::new(net) as Arc<dyn Transport>
            }
            TransportSite::Shard(_) => Arc::new(Bus::new()) as Arc<dyn Transport>,
        },
    );
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    let mut adopted = 0u64;
    for agent in 0..consults {
        if engine.consult(agent, &spec).adopted {
            adopted += 1;
        }
    }
    engine.sync_reputation();
    let saboteur = Party::Verifier(2);
    let excluded_shards = (0..engine.shard_count())
        .filter(|&s| !engine.with_shard(s, |a| a.reputation().is_trusted(saboteur)))
        .count();
    let hub = engine.gossip_bus().expect("gossip engine");
    CampaignCell {
        loss,
        consults,
        adopted,
        excluded_shards,
        gossip_delivered_bytes: hub.delivered_bytes(),
        gossip_total_bytes: hub.total_bytes(),
    }
}

/// Partition/heal reconciliation economics at the gossip-plane level.
/// Returns `(reconciliation_bytes, full_snapshot_bytes)`.
fn run_reconciliation(cell_seed: u64) -> (usize, usize) {
    let net = Arc::new(SimNet::lossless(cell_seed));
    let plane = GossipPlane::over_transport_with(
        ReputationDecay::None,
        Arc::clone(&net) as Arc<dyn Transport>,
    );
    let delivered_to = |shard: u64| -> usize {
        net.delivery_log()
            .iter()
            .filter(|r| r.delivered && r.from == GOSSIP_HUB && r.to == Party::Shard(shard))
            .map(|r| r.bytes)
            .sum()
    };
    let mut states: Vec<DecayingPnCounterMap> =
        (0..3).map(|_| DecayingPnCounterMap::new()).collect();
    let mut seens: Vec<VersionVector> = (0..3).map(|_| VersionVector::new()).collect();
    for shard in 0..3u64 {
        let s = shard as usize;
        states[s].record(shard, Party::Verifier(shard), true);
        plane.publish_from(shard, states[s].replica_slice(shard));
    }
    for shard in 0..3u64 {
        let s = shard as usize;
        plane.pull_into(shard, &mut states[s], &mut seens[s]);
    }
    net.split(&[Party::Shard(2)], &[GOSSIP_HUB]);
    for round in 0..4u64 {
        for shard in 0..2u64 {
            let s = shard as usize;
            states[s].record(shard, Party::Verifier(10 + round * 2 + shard), true);
            plane.publish_from(shard, states[s].replica_slice(shard));
        }
    }
    net.heal_partitions();
    let before = delivered_to(2);
    plane.pull_into(2, &mut states[2], &mut seens[2]);
    let reconciliation = delivered_to(2) - before;
    let mut fresh_state = DecayingPnCounterMap::new();
    let mut fresh_seen = VersionVector::new();
    plane.pull_into(9, &mut fresh_state, &mut fresh_seen);
    (reconciliation, delivered_to(9))
}

fn main() {
    let exchanges: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("exchange budget must be an integer"))
        .unwrap_or(400);
    let seed = seed();
    println!(
        "Fault-injection benchmark over SimNet — seed {seed}, {exchanges} exchanges per RTT cell.\n"
    );

    // 1. RTT cells: latency windows × loss rates.
    let latencies = [("lan", 1, 3), ("wan", 20, 60), ("satellite", 250, 350)];
    let losses = [0.0, 0.01, 0.10];
    println!(
        "{:>10} {:>6} {:>9} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "profile",
        "loss",
        "latency",
        "retries",
        "p50 ticks",
        "p95 ticks",
        "p99 ticks",
        "delivered B",
        "accounted B"
    );
    let mut rows = Vec::new();
    let mut rtt_json = Vec::new();
    for (ci, &(name, lo, hi)) in latencies.iter().enumerate() {
        for (ri, &loss) in losses.iter().enumerate() {
            let link = LinkProfile {
                latency_min: lo,
                latency_max: hi,
                drop_prob: loss,
                duplicate_probability: 0.0,
            };
            let cell = run_rtt_cell(name, link, exchanges, seed ^ ((ci * 8 + ri) as u64));
            println!(
                "{:>10} {:>6.2} {:>4}..{:<4} {:>8} {:>10} {:>10} {:>10} {:>12} {:>12}",
                cell.profile,
                cell.loss,
                cell.latency_min,
                cell.latency_max,
                cell.retries,
                cell.p50_ticks,
                cell.p95_ticks,
                cell.p99_ticks,
                cell.delivered_bytes,
                cell.total_bytes
            );
            rows.push(format!(
                "rtt,{},{:.2},{},{},{},{},{},{},{},{},{}",
                cell.profile,
                cell.loss,
                cell.latency_min,
                cell.latency_max,
                cell.exchanges,
                cell.retries,
                cell.p50_ticks,
                cell.p95_ticks,
                cell.p99_ticks,
                cell.delivered_bytes,
                cell.total_bytes
            ));
            rtt_json.push(format!(
                "{{\"profile\":\"{}\",\"loss\":{:.2},\"latency_min\":{},\
                 \"latency_max\":{},\"exchanges\":{},\"retries\":{},\
                 \"p50_ticks\":{},\"p95_ticks\":{},\"p99_ticks\":{},\
                 \"delivered_bytes\":{},\"total_bytes\":{}}}",
                cell.profile,
                cell.loss,
                cell.latency_min,
                cell.latency_max,
                cell.exchanges,
                cell.retries,
                cell.p50_ticks,
                cell.p95_ticks,
                cell.p99_ticks,
                cell.delivered_bytes,
                cell.total_bytes
            ));
        }
    }

    // 2. Campaign cells over an increasingly lossy gossip hub.
    println!("\nsaboteur campaign over a lossy gossip hub (64 consults, 2 shards):");
    println!(
        "{:>6} {:>8} {:>8} {:>9} {:>12} {:>12}",
        "loss", "consults", "adopted", "excluded", "delivered B", "accounted B"
    );
    let mut campaign_json = Vec::new();
    for (i, &loss) in [0.0, 0.2, 0.5].iter().enumerate() {
        let cell = run_campaign_cell(loss, 64, seed ^ (0x100 + i as u64));
        println!(
            "{:>6.1} {:>8} {:>8} {:>9} {:>12} {:>12}",
            cell.loss,
            cell.consults,
            cell.adopted,
            cell.excluded_shards,
            cell.gossip_delivered_bytes,
            cell.gossip_total_bytes
        );
        rows.push(format!(
            "campaign,gossip,{:.2},,,{},,,,{},{}",
            cell.loss, cell.consults, cell.gossip_delivered_bytes, cell.gossip_total_bytes
        ));
        campaign_json.push(format!(
            "{{\"loss\":{:.2},\"consults\":{},\"adopted\":{},\
             \"excluded_shards\":{},\"gossip_delivered_bytes\":{},\
             \"gossip_total_bytes\":{}}}",
            cell.loss,
            cell.consults,
            cell.adopted,
            cell.excluded_shards,
            cell.gossip_delivered_bytes,
            cell.gossip_total_bytes
        ));
    }

    // 3. Partition/heal reconciliation economics.
    let (reconciliation, full_snapshot) = run_reconciliation(seed ^ 0x5107);
    assert!(
        reconciliation > 0 && reconciliation < full_snapshot,
        "reconciliation must ship the missed slots and beat the full snapshot"
    );
    println!(
        "\npartition/heal reconciliation: {reconciliation} B incremental vs \
         {full_snapshot} B full-snapshot pull"
    );

    let csv_path = write_csv(
        "faults",
        "section,profile,loss,latency_min,latency_max,count,retries,p50_ticks,p95_ticks,p99_ticks,delivered_bytes,total_bytes",
        &rows,
    );
    let json_path = write_json(
        "BENCH_faults",
        &format!(
            "{{\"bench\":\"faults\",\"unit\":\"virtual_ticks\",\"seed\":{seed},\
             \"exchanges_per_cell\":{exchanges},\
             \"rtt_cells\":[{}],\
             \"campaign_cells\":[{}],\
             \"reconciliation\":{{\"reconciliation_bytes\":{reconciliation},\
             \"full_snapshot_bytes\":{full_snapshot}}}}}",
            rtt_json.join(","),
            campaign_json.join(",")
        ),
    );
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());
    println!(
        "\nreading the numbers — lossless cells must show zero retries and p99 == the\n\
         latency ceiling; under loss the retransmit timer dominates the tail, so p99\n\
         growing with loss is expected while p50 stays near the clean RTT. In the\n\
         campaign cells adoption must stay at 100% at every loss rate (loss delays\n\
         exclusion news, it never corrupts verdicts), and reconciliation must stay\n\
         strictly cheaper than a full-snapshot pull."
    );
}
