//! Chaos soak over [`SimNet`]: the resilient consultation protocol
//! (deadline budget, retransmit/backoff, quorum degradation) swept across
//! a loss × latency × deadline grid, on the virtual clock.
//!
//! Each cell is a fresh seeded network carrying a full [`RationalityAuthority`]
//! — honest inventor, honest panel of three, `quorum = 2` — driven through a
//! soak of consultations via `try_consult`. Per cell the soak reports:
//!
//! - **completion rate** — consults that returned `Ok` (full or degraded)
//!   over the soak size; the headline robustness number.
//! - **degraded rate** — `Ok` closes that settled at quorum rather than the
//!   full panel.
//! - **attempt tail** — p50/p99 of per-session send attempts, the latency
//!   proxy on a virtual clock.
//! - **retransmit overhead** — the ledger's retransmit-byte share of total
//!   accounted bytes, i.e. what loss costs beyond Lemma 1 goodput.
//!
//! The moderate cell — 20% per-link loss, LAN latency, default deadline —
//! is the CI gate: its completion rate must hold at or above 99%. The bin
//! asserts this itself so a local run fails the same way CI does.
//!
//! The seed comes from `RA_SCENARIO_SEED` (decimal) when set — the same
//! replay handle the scenario suite uses — and defaults to the same fixed
//! campaign seed.
//!
//! Results go to `results/chaos.csv` and, schema-gated in CI,
//! `BENCH_chaos.json` at the workspace root.
//!
//! Usage: `cargo run -p ra-bench --release --bin chaos [-- N]` where `N`
//! is the consults-per-cell soak budget (default 64).

use std::sync::Arc;

use ra_authority::{
    GameSpec, Inventor, InventorBehavior, LinkProfile, LocalReputation, PanelOutcome,
    RationalityAuthority, ResilienceConfig, SimNet, SimNetConfig, Transport, VerifierBehavior,
};
use ra_bench::{write_csv, write_json};
use ra_games::named::prisoners_dilemma;

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn seed() -> u64 {
    std::env::var("RA_SCENARIO_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xDEC0DE)
}

/// One measured soak cell.
struct ChaosCell {
    latency: &'static str,
    loss: f64,
    deadline: u64,
    consults: u64,
    completed: u64,
    degraded: u64,
    p50_attempts: u64,
    p99_attempts: u64,
    goodput_bytes: usize,
    retransmit_bytes: usize,
    total_bytes: usize,
}

impl ChaosCell {
    fn completion_rate(&self) -> f64 {
        self.completed as f64 / self.consults as f64
    }

    fn degraded_rate(&self) -> f64 {
        self.degraded as f64 / self.consults as f64
    }

    fn retransmit_share(&self) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        self.retransmit_bytes as f64 / self.total_bytes as f64
    }
}

/// Runs one soak cell: `consults` resilient consultations over a fresh
/// seeded network with per-link loss `loss` and the given latency window,
/// under a per-session deadline budget of `deadline` virtual ticks.
fn run_cell(
    latency: &'static str,
    window: (u64, u64),
    loss: f64,
    deadline: u64,
    consults: u64,
    cell_seed: u64,
) -> ChaosCell {
    let net = Arc::new(SimNet::new(SimNetConfig {
        seed: cell_seed,
        default_link: LinkProfile {
            latency_min: window.0,
            latency_max: window.1,
            drop_prob: loss,
            duplicate_probability: 0.0,
        },
        ..SimNetConfig::default()
    }));
    let mut authority = RationalityAuthority::with_transport(
        Inventor::new(0, InventorBehavior::Honest),
        &[VerifierBehavior::Honest; 3],
        Arc::new(LocalReputation::new()),
        Arc::clone(&net) as Arc<dyn Transport>,
    );
    authority.set_resilience(Some(ResilienceConfig {
        deadline,
        quorum: 2,
        seed: cell_seed,
        ..ResilienceConfig::default()
    }));
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
    let mut completed = 0u64;
    let mut degraded = 0u64;
    let mut attempts: Vec<u64> = Vec::with_capacity(consults as usize);
    for agent in 0..consults {
        match authority.try_consult(agent, &spec) {
            Ok(outcome) => {
                completed += 1;
                if matches!(outcome.panel, PanelOutcome::Degraded { .. }) {
                    degraded += 1;
                }
                attempts.push(outcome.attempts);
            }
            Err(ra_authority::ConsultError::Deadline {
                attempts: spent, ..
            }) => attempts.push(spent),
        }
    }
    attempts.sort_unstable();
    ChaosCell {
        latency,
        loss,
        deadline,
        consults,
        completed,
        degraded,
        p50_attempts: percentile(&attempts, 0.50),
        p99_attempts: percentile(&attempts, 0.99),
        goodput_bytes: net.goodput_bytes(),
        retransmit_bytes: net.retransmit_bytes(),
        total_bytes: net.total_bytes(),
    }
}

fn main() {
    let consults: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("soak budget must be an integer"))
        .unwrap_or(64);
    let seed = seed();
    println!("Chaos soak over SimNet — seed {seed}, {consults} consults per cell.\n");

    let latencies = [("lan", (1, 3)), ("wan", (8, 24))];
    let losses = [0.0, 0.05, 0.20, 0.35];
    let deadlines = [512, 4096];
    let moderate = ("lan", 0.20, 4096u64);

    println!(
        "{:>6} {:>6} {:>9} {:>11} {:>9} {:>8} {:>8} {:>12} {:>12}",
        "link",
        "loss",
        "deadline",
        "completion",
        "degraded",
        "p50 att",
        "p99 att",
        "retx B",
        "total B"
    );
    let mut rows = Vec::new();
    let mut cells_json = Vec::new();
    let mut moderate_rate = None;
    for (li, &(latency, window)) in latencies.iter().enumerate() {
        for (fi, &loss) in losses.iter().enumerate() {
            for (di, &deadline) in deadlines.iter().enumerate() {
                let salt = (li * 64 + fi * 8 + di) as u64;
                let cell = run_cell(latency, window, loss, deadline, consults, seed ^ salt);
                println!(
                    "{:>6} {:>6.2} {:>9} {:>11.4} {:>9.4} {:>8} {:>8} {:>12} {:>12}",
                    cell.latency,
                    cell.loss,
                    cell.deadline,
                    cell.completion_rate(),
                    cell.degraded_rate(),
                    cell.p50_attempts,
                    cell.p99_attempts,
                    cell.retransmit_bytes,
                    cell.total_bytes
                );
                if (cell.latency, cell.loss, cell.deadline) == moderate {
                    moderate_rate = Some(cell.completion_rate());
                }
                rows.push(format!(
                    "{},{:.2},{},{},{},{},{},{},{},{},{}",
                    cell.latency,
                    cell.loss,
                    cell.deadline,
                    cell.consults,
                    cell.completed,
                    cell.degraded,
                    cell.p50_attempts,
                    cell.p99_attempts,
                    cell.goodput_bytes,
                    cell.retransmit_bytes,
                    cell.total_bytes
                ));
                cells_json.push(format!(
                    "{{\"latency\":\"{}\",\"loss\":{:.2},\"deadline\":{},\
                     \"consults\":{},\"completed\":{},\"degraded\":{},\
                     \"completion_rate\":{:.4},\"degraded_rate\":{:.4},\
                     \"p50_attempts\":{},\"p99_attempts\":{},\
                     \"goodput_bytes\":{},\"retransmit_bytes\":{},\
                     \"total_bytes\":{},\"retransmit_share\":{:.4}}}",
                    cell.latency,
                    cell.loss,
                    cell.deadline,
                    cell.consults,
                    cell.completed,
                    cell.degraded,
                    cell.completion_rate(),
                    cell.degraded_rate(),
                    cell.p50_attempts,
                    cell.p99_attempts,
                    cell.goodput_bytes,
                    cell.retransmit_bytes,
                    cell.total_bytes,
                    cell.retransmit_share()
                ));
            }
        }
    }

    let moderate_rate = moderate_rate.expect("the moderate cell is in the grid");
    assert!(
        moderate_rate >= 0.99,
        "moderate cell (20% loss, lan, deadline 4096) completed {moderate_rate:.4} < 0.99"
    );

    let csv_path = write_csv(
        "chaos",
        "latency,loss,deadline,consults,completed,degraded,p50_attempts,p99_attempts,goodput_bytes,retransmit_bytes,total_bytes",
        &rows,
    );
    let json_path = write_json(
        "BENCH_chaos",
        &format!(
            "{{\"bench\":\"chaos\",\"unit\":\"virtual_ticks\",\"seed\":{seed},\
             \"consults_per_cell\":{consults},\
             \"moderate_cell\":{{\"latency\":\"lan\",\"loss\":0.20,\"deadline\":4096,\
             \"completion_rate\":{moderate_rate:.4}}},\
             \"cells\":[{}]}}",
            cells_json.join(",")
        ),
    );
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());
    println!(
        "\nreading the numbers — zero-loss cells must complete 100% with zero\n\
         retransmit bytes and attempt counts pinned at zero; under loss the\n\
         backoff schedule converts drops into retries, so completion holds near\n\
         1.0 while the retransmit share and p99 attempts grow with the loss\n\
         rate. The short deadline trades completion for promptness: cells that\n\
         fail there fail with a typed deadline error, never a silent minority\n\
         vote. The moderate cell (20% loss) is the CI gate at >= 0.99."
    );
}
