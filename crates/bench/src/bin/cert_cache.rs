//! Measures the content-addressed certificate cache under Zipf-distributed
//! game popularity: how much of a consultation stream the spec-digest
//! memoization absorbs, and what a hit costs next to the full Fig. 1
//! protocol.
//!
//! For each Zipf exponent `s ∈ {0.8, 1.1}` × catalog size `{64, 1k, 16k}`
//! × cache mode `{Replay, Trust}`, the same drawn consultation stream is
//! run through two 4-shard engines: a **cold** pass on a cache-disabled
//! engine (every consult pays the full protocol — the baseline the cache
//! is up against) and a **warm** pass on an engine with a shared
//! capacity-4096 cache primed by one untimed run of the identical
//! stream. Hit rates come from the engine's own `cache_stats()`
//! deltas; throughput is wall-clock consults/sec. Results go to
//! `results/cert_cache.csv` and, in the perf-trajectory format,
//! `BENCH_cert_cache.json` at the workspace root — the headline block is
//! the warm-over-cold Trust speedup on the Zipf(1.1)/1k-catalog stream,
//! and CI gates that stream's warm hit rate.
//!
//! Usage: `cargo run -p ra-bench --release --bin cert_cache [-- DRAWS]`
//! where `DRAWS` is the consultations per pass (default 4096; CI uses a
//! small value).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ra_authority::{
    CacheMode, CertCacheConfig, GameSpec, InventorBehavior, ReputationConfig, ShardedAuthority,
    VerifierBehavior,
};
use ra_bench::{fmt_secs, timed, write_csv, write_json};
use ra_exact::rat;
use ra_games::StrategicGame;

const ZIPF_EXPONENTS: [f64; 2] = [0.8, 1.1];
const CATALOG_SIZES: [usize; 3] = [64, 1024, 16384];
const CACHE_CAPACITY: usize = 4096;
const SHARDS: usize = 4;

/// The catalog's `rank`-th game: a 16×16 coordination game whose diagonal
/// payoffs encode the rank, so every rank has a distinct canonical
/// encoding (and therefore a distinct spec digest). The size is the
/// point: *solving* scans every profile's deviations (O(k³) utility
/// lookups) while a cache hit only re-encodes and hashes the spec
/// (O(k²) bytes) — the same verify-is-cheaper-than-compute asymmetry the
/// paper builds on, so the cache's win grows with the game.
fn catalog_game(rank: usize) -> GameSpec {
    GameSpec::Strategic(StrategicGame::from_payoff_fn(vec![16, 16], |profile| {
        let (a, b) = (profile.strategy_of(0), profile.strategy_of(1));
        let payoff = if a == b {
            rat((rank + 1 + a) as i64, 1)
        } else {
            rat(0, 1)
        };
        vec![payoff.clone(), payoff]
    }))
}

/// A Zipf(s) sampler over ranks `0..n` via a precomputed normalized CDF:
/// rank `r` is drawn with probability proportional to `1 / (r + 1)^s`.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Zipf {
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..=1.0);
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

struct PassResult {
    secs: f64,
    rate: f64,
    hit_rate: f64,
}

fn main() {
    let draws: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("draw count must be an integer"))
        .unwrap_or(4096);
    println!(
        "Certificate cache under Zipf popularity — {draws} draws per pass, \
         {SHARDS} shards, shared capacity-{CACHE_CAPACITY} cache:\n"
    );
    println!(
        "{:>7} {:>5} {:>8} {:>11} {:>15} {:>11} {:>15} {:>10}",
        "mode", "s", "catalog", "cold", "cold cons/s", "warm", "warm cons/s", "warm hit"
    );
    let mut rows = Vec::new();
    let mut json_entries = Vec::new();
    let mut headline = None;
    for mode in [CacheMode::Replay, CacheMode::Trust] {
        for s in ZIPF_EXPONENTS {
            for catalog_size in CATALOG_SIZES {
                let zipf = Zipf::new(catalog_size, s);
                // Seeded per configuration, so the stream is reproducible
                // and identical across the two modes.
                let mut rng =
                    StdRng::seed_from_u64(0xCAC4E ^ catalog_size as u64 ^ (s * 10.0) as u64);
                let ranks: Vec<usize> = (0..draws).map(|_| zipf.sample(&mut rng)).collect();
                let specs: Vec<GameSpec> = ranks.iter().map(|&r| catalog_game(r)).collect();
                let cache = CertCacheConfig {
                    enabled: true,
                    capacity: CACHE_CAPACITY,
                    mode,
                };
                let baseline = ShardedAuthority::with_config(
                    SHARDS,
                    InventorBehavior::Honest,
                    &[VerifierBehavior::Honest; 3],
                    ReputationConfig::default(),
                );
                let engine = ShardedAuthority::with_cert_cache(
                    SHARDS,
                    InventorBehavior::Honest,
                    &[VerifierBehavior::Honest; 3],
                    ReputationConfig::default(),
                    cache,
                );
                let pass = |engine: &ShardedAuthority, baseline_hits: u64| {
                    let (_, secs) = timed(|| {
                        for (agent, spec) in specs.iter().enumerate() {
                            let outcome = engine.consult(agent as u64, spec);
                            assert!(outcome.adopted, "coordination games always adopt");
                        }
                    });
                    PassResult {
                        secs,
                        rate: draws as f64 / secs.max(1e-12),
                        hit_rate: (engine.cache_stats().hits - baseline_hits) as f64 / draws as f64,
                    }
                };
                // Cold: the cache-disabled engine, so every consult is
                // the full Fig. 1 protocol. Warm: prime the cached
                // engine with one untimed pass of the same stream, then
                // time the replayed stream against the populated cache.
                let cold = pass(&baseline, 0);
                let _prime = pass(&engine, 0);
                let warm = pass(&engine, engine.cache_stats().hits);
                let stats = engine.shard_stats();
                let mode_name = format!("{mode:?}");
                println!(
                    "{:>7} {:>5} {:>8} {:>11} {:>15.0} {:>11} {:>15.0} {:>10.3}",
                    mode_name,
                    s,
                    catalog_size,
                    fmt_secs(cold.secs),
                    cold.rate,
                    fmt_secs(warm.secs),
                    warm.rate,
                    warm.hit_rate
                );
                rows.push(format!(
                    "{mode_name},{s},{catalog_size},{draws},{:.9},{:.3},{:.6},{:.9},{:.3},{:.6},{},{},{},{},{}",
                    cold.secs,
                    cold.rate,
                    cold.hit_rate,
                    warm.secs,
                    warm.rate,
                    warm.hit_rate,
                    stats.cache.hits,
                    stats.cache.misses,
                    stats.cache.evictions,
                    stats.cache.replay_failures,
                    stats.frame_pool_misses
                ));
                json_entries.push(format!(
                    "{{\"mode\":\"{mode_name}\",\"zipf_s\":{s},\"catalog\":{catalog_size},\
                     \"draws\":{draws},\
                     \"cold_secs\":{:.9},\"cold_consults_per_sec\":{:.3},\
                     \"cold_hit_rate\":{:.6},\
                     \"warm_secs\":{:.9},\"warm_consults_per_sec\":{:.3},\
                     \"warm_hit_rate\":{:.6},\
                     \"hits\":{},\"misses\":{},\"evictions\":{},\
                     \"replay_failures\":{},\"frame_pool_misses\":{}}}",
                    cold.secs,
                    cold.rate,
                    cold.hit_rate,
                    warm.secs,
                    warm.rate,
                    warm.hit_rate,
                    stats.cache.hits,
                    stats.cache.misses,
                    stats.cache.evictions,
                    stats.cache.replay_failures,
                    stats.frame_pool_misses
                ));
                if mode == CacheMode::Trust && s == 1.1 && catalog_size == 1024 {
                    headline = Some((cold, warm));
                }
            }
        }
    }
    let (cold, warm) = headline.expect("the headline configuration always runs");
    let speedup = warm.rate / cold.rate.max(1e-12);
    println!(
        "\nheadline — Trust, Zipf(1.1), 1k catalog: warm {:.0} consults/sec over cold \
         {:.0} ({speedup:.1}x), warm hit rate {:.3}",
        warm.rate, cold.rate, warm.hit_rate
    );

    let csv_path = write_csv(
        "cert_cache",
        "mode,zipf_s,catalog,draws,cold_secs,cold_consults_per_sec,cold_hit_rate,\
         warm_secs,warm_consults_per_sec,warm_hit_rate,hits,misses,evictions,\
         replay_failures,frame_pool_misses",
        &rows,
    );
    let json_path = write_json(
        "BENCH_cert_cache",
        &format!(
            "{{\"bench\":\"cert_cache\",\"unit\":\"consults_per_sec\",\
             \"draws\":{draws},\"capacity\":{CACHE_CAPACITY},\"shards\":{SHARDS},\
             \"headline\":{{\"mode\":\"Trust\",\"zipf_s\":1.1,\"catalog\":1024,\
             \"cold_consults_per_sec\":{:.3},\"warm_consults_per_sec\":{:.3},\
             \"warm_hit_rate\":{:.6},\"warm_trust_over_cold\":{speedup:.3}}},\
             \"results\":[{}]}}",
            cold.rate,
            warm.rate,
            warm.hit_rate,
            json_entries.join(",")
        ),
    );
    println!("\nwrote {}", csv_path.display());
    println!("wrote {}", json_path.display());
}
