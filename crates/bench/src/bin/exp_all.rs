//! Runs every experiment binary in sequence — regenerates all the data
//! behind EXPERIMENTS.md (CSV files land in `results/`).
//!
//! Usage: `cargo run -p ra-bench --release --bin exp_all`

use std::process::Command;

fn main() {
    let bins = [
        "fig5_remark2",
        "fig6_demo",
        "sec3_certificates",
        "lemma1_table",
        "remark3_queries",
        "sec5_numbers",
        "fig7",
        "authority_faults",
    ];
    let exe_dir = std::env::current_exe()
        .expect("own path")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    for bin in bins {
        println!(
            "\n=== {bin} {}\n",
            "=".repeat(60_usize.saturating_sub(bin.len()))
        );
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nAll experiments regenerated; CSVs in results/.");
}
