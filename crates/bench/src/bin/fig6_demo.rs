//! Walks through the Fig. 6 example for a range of `k`.
//!
//! Usage: `cargo run -p ra-bench --release --bin fig6_demo`

use ra_bench::write_csv;
use ra_congestion::{fig6_instance, fig6_outcome};

fn main() {
    println!("Fig. 6 — the online greedy best-reply is not a hindsight best-reply.");
    println!("Network: a→b→d and a→c→d, identity delays, unit loads; every arc starts at k.\n");
    println!(
        "{:>6} {:>22} {:>24} {:>8}",
        "k", "greedy delay (2k+3)", "hindsight delay (2k+2)", "regret"
    );
    let mut rows = Vec::new();
    for k in [1u64, 2, 3, 5, 10, 25, 50, 100] {
        let (experienced, hindsight) = fig6_outcome(k);
        let regret = &experienced - &hindsight;
        println!("{k:>6} {experienced:>22} {hindsight:>24} {regret:>8}");
        assert_eq!(experienced, ra_exact::Rational::from(2 * k as i64 + 3));
        assert_eq!(hindsight, ra_exact::Rational::from(2 * k as i64 + 2));
        rows.push(format!("{k},{experienced},{hindsight},{regret}"));
    }
    let path = write_csv("fig6", "k,greedy_delay,hindsight_delay,regret", &rows);
    println!("\nwrote {}", path.display());

    let fig = fig6_instance(3);
    println!(
        "\ninstance sanity (k = 3): {} nodes, {} arcs, initial arc loads {:?}",
        fig.network.num_nodes(),
        fig.network.num_arcs(),
        fig.config
            .arc_loads
            .iter()
            .map(|l| l.to_string())
            .collect::<Vec<_>>()
    );
    println!(
        "paper check — agent 2k+1 experiences 2k+3 while its hindsight best reply\n\
         a→c→d costs 2k+2: a constant regret of 1, for every k."
    );
}
