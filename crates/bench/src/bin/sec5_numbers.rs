//! Regenerates every worked number in §5 (the participation game).
//!
//! * Eq. (4): `c = v(n−1)p(1−p)^{n−2}` at the advised `p`.
//! * The worked example `c/v = 3/8, n = 3 ⇒ p = 1/4`, expected gain `v/16`.
//! * Eq. (5) conditional probabilities `A_k, B_k, C_k, D_k`.
//! * The online variant: last-mover gains, the paper's `5v/24` lower bound
//!   and the exact online expectation, vs the offline `v/16`.
//!
//! Usage: `cargo run -p ra-bench --release --bin sec5_numbers`
#![allow(clippy::result_large_err)]

use ra_auctions::{
    exact_online_expected_gain, last_mover_advice, last_mover_gain, ParticipationGame,
};
use ra_bench::{timed, write_csv};
use ra_exact::{rat, Rational};
use ra_proofs::verify_participation_certificate;
use ra_solvers::{solve_participation_equilibrium, ParticipationParams};

fn main() {
    let game = ParticipationGame::paper_example();
    let params = game.params().clone();
    println!(
        "§5 worked example: n = {}, k = {}, v = {}, c = {} (c/v = {})\n",
        params.n,
        params.k,
        params.v,
        params.c,
        &params.c / &params.v
    );

    // Offline equilibrium and certificate verification.
    let (cert, t_solve) = timed(|| game.inventor_advice(&rat(1, 1 << 30)).unwrap());
    let (verified, t_verify) =
        timed(|| verify_participation_certificate(&cert, &rat(1, 1 << 20)).unwrap());
    println!("advised p                 = {}   (paper: 1/4)", verified.p);
    println!(
        "A_k = Pr[≥1 other | in]   = {}   (paper: 7/16)",
        verified.a_k
    );
    println!(
        "B_k = Pr[0 others | in]   = {}   (paper: 9/16)",
        verified.b_k
    );
    println!(
        "C_k = Pr[≥2 others | out] = {}   (paper: 1/16)",
        verified.c_k
    );
    println!(
        "D_k = Pr[≤1 other | out]  = {}   (paper: 15/16)",
        verified.d_k
    );
    println!(
        "expected gain             = {}   (paper: v/16 = 1/2 at v = 8)",
        verified.expected_gain
    );
    println!(
        "solver time {} vs verifier time {}",
        ra_bench::fmt_secs(t_solve),
        ra_bench::fmt_secs(t_verify)
    );
    assert_eq!(verified.p, rat(1, 4));
    assert_eq!(verified.expected_gain, rat(1, 2));

    // Online last-mover table.
    println!("\nonline last-mover advice (k = 2):");
    println!(
        "{:>16} {:>8} {:>12} {:>14}",
        "prior entrants", "advice", "gain", "flipped gain"
    );
    for prior in 0..3usize {
        let advice = last_mover_advice(&params, prior);
        let gain = last_mover_gain(&params, prior, advice.participate);
        let flipped = last_mover_gain(&params, prior, !advice.participate);
        println!(
            "{:>16} {:>8} {:>12} {:>14}",
            prior,
            if advice.participate { "p = 1" } else { "p = 0" },
            gain.to_string(),
            flipped.to_string()
        );
    }

    // Expected-gain comparison.
    let online = exact_online_expected_gain(&params, &rat(1, 4));
    println!("\nexpected gain per firm (random arrival order):");
    println!("  offline equilibrium (v/16):       {}", rat(1, 2));
    println!("  paper online lower bound (5v/24): {}", rat(5, 3));
    println!("  exact online value:               {online} (= 21v/64)");
    assert_eq!(online, rat(21, 8));

    // General-k sweep: solve + verify across parameterisations.
    println!("\ngeneral-k sweep (solver → verifier round trip):");
    println!(
        "{:>4} {:>4} {:>6} {:>6} {:>14} {:>12} {:>12}",
        "n", "k", "v", "c", "p (≈)", "solve", "verify"
    );
    let mut rows = Vec::new();
    for (n, k, v, c) in [
        (3u64, 2u64, 8i64, 3i64),
        (5, 2, 10, 1),
        (8, 3, 12, 1),
        (10, 5, 20, 1),
        (12, 2, 9, 2),
        (15, 4, 30, 1),
    ] {
        let params = ParticipationParams::new(n, k, Rational::from(v), Rational::from(c)).unwrap();
        let tol = rat(1, 1 << 26);
        let (roots, t_solve) = timed(|| solve_participation_equilibrium(&params, &tol));
        let Ok(roots) = roots else {
            println!(
                "{n:>4} {k:>4} {v:>6} {c:>6} {:>14} {:>12} {:>12}",
                "none", "-", "-"
            );
            continue;
        };
        let cert = ra_proofs::ParticipationCertificate {
            params: params.clone(),
            root: roots[0].clone(),
        };
        let (res, t_verify) = timed(|| verify_participation_certificate(&cert, &tol));
        assert!(res.is_ok());
        let p_approx = roots[0].value().to_f64();
        println!(
            "{n:>4} {k:>4} {v:>6} {c:>6} {p_approx:>14.6} {:>12} {:>12}",
            ra_bench::fmt_secs(t_solve),
            ra_bench::fmt_secs(t_verify)
        );
        rows.push(format!(
            "{n},{k},{v},{c},{p_approx:.8},{t_solve:.9},{t_verify:.9}"
        ));
    }
    let path = write_csv("sec5", "n,k,v,c,p,solve_secs,verify_secs", &rows);
    println!("\nwrote {}", path.display());
}
