//! Criterion bench: the authority-infrastructure substrate — P2 interactive
//! verification, wire codec throughput, exact arithmetic, and full
//! end-to-end consultation sessions.
//!
//! Includes the ablation: exact-rational vs f64 linear solving on
//! the P1 indifference system (the price of soundness).
//!
//! Run with `cargo bench -p ra-bench --bench infrastructure`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ra_authority::{
    GameSpec, Inventor, InventorBehavior, Message, RationalityAuthority, VerifierBehavior, Wire,
};
use ra_bench::game_with_support_size;
use ra_exact::{rat, solve_linear_system, Matrix, Rational};
use ra_games::named::prisoners_dilemma;
use ra_games::{GameGenerator, MixedProfile, MixedStrategy};
use ra_proofs::{honest_row_advice, verify_private_advice, HonestOracle, P2Config};

fn bench_p2(c: &mut Criterion) {
    let mut group = c.benchmark_group("p2");
    let m = 51;
    for s in [3usize, 17, 51] {
        let game = game_with_support_size(m, s);
        let mut probs = vec![Rational::zero(); m];
        for p in probs.iter_mut().take(s) {
            *p = Rational::new(1, s as i64);
        }
        let profile = MixedProfile {
            row: MixedStrategy::try_new(probs.clone()).unwrap(),
            col: MixedStrategy::try_new(probs).unwrap(),
        };
        let advice = honest_row_advice(&game, &profile);
        let support = profile.col.support();
        group.bench_with_input(BenchmarkId::new("verify", s), &s, |b, _| {
            b.iter(|| {
                let mut oracle = HonestOracle::new(support.clone());
                let mut rng = StdRng::seed_from_u64(5);
                verify_private_advice(
                    black_box(&game),
                    black_box(&advice),
                    &mut oracle,
                    &mut rng,
                    &P2Config::default(),
                )
            })
        });
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let game = ra_games::named::coordination_game(4);
    let proof = ra_proofs::prove_max_nash(&game, &vec![3, 3].into()).unwrap();
    let msg = Message::AdviceWithProof {
        game_id: 7,
        advice: Box::new(ra_authority::Advice::PureNash(
            ra_proofs::PureNashCertificate {
                profile: vec![3, 3].into(),
                proof,
            },
        )),
    };
    let bytes = msg.to_bytes();
    group.bench_function("encode_max_proof", |b| {
        b.iter(|| black_box(&msg).to_bytes())
    });
    group.bench_function("decode_max_proof", |b| {
        b.iter(|| {
            let mut buf = bytes.clone();
            Message::decode(&mut buf).unwrap()
        })
    });
    group.finish();
}

/// The soundness ablation: exact ℚ Gaussian elimination vs naive f64 on the
/// same indifference-style systems.
fn bench_exact_vs_f64(c: &mut Criterion) {
    let mut group = c.benchmark_group("linsys");
    for k in [3usize, 6, 10] {
        let game = GameGenerator::seeded(k as u64).bimatrix(k, k, -100..=100);
        let a = Matrix::from_fn(k + 1, k + 1, |r, cix| {
            if r < k {
                if cix < k {
                    game.a(r, cix).clone()
                } else {
                    Rational::from(-1)
                }
            } else if cix < k {
                Rational::one()
            } else {
                Rational::zero()
            }
        });
        let mut rhs = vec![Rational::zero(); k + 1];
        rhs[k] = Rational::one();
        let a_f64: Vec<Vec<f64>> = (0..k + 1)
            .map(|r| (0..k + 1).map(|cix| a[(r, cix)].to_f64()).collect())
            .collect();
        let rhs_f64: Vec<f64> = rhs.iter().map(Rational::to_f64).collect();
        group.bench_with_input(BenchmarkId::new("exact", k), &k, |b, _| {
            b.iter(|| solve_linear_system(black_box(&a), black_box(&rhs)))
        });
        group.bench_with_input(BenchmarkId::new("f64", k), &k, |b, _| {
            b.iter(|| f64_gauss(black_box(&a_f64), black_box(&rhs_f64)))
        });
    }
    group.finish();
}

/// Plain f64 Gaussian elimination with partial pivoting (bench-only).
fn f64_gauss(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &rhs)| {
            let mut r = row.clone();
            r.push(rhs);
            r
        })
        .collect();
    for col in 0..n {
        let pivot =
            (col..n).max_by(|&x, &y| m[x][col].abs().partial_cmp(&m[y][col].abs()).unwrap())?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(pivot, col);
        for r in 0..n {
            if r == col {
                continue;
            }
            let f = m[r][col] / m[col][col];
            let pivot_row = m[col].clone();
            for (cix, cell) in m[r].iter_mut().enumerate().skip(col) {
                *cell -= f * pivot_row[cix];
            }
        }
    }
    Some((0..n).map(|i| m[i][n] / m[i][i]).collect())
}

fn bench_session(c: &mut Criterion) {
    let mut group = c.benchmark_group("session");
    group.bench_function("end_to_end_strategic", |b| {
        let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());
        b.iter(|| {
            let mut authority = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Honest),
                &[VerifierBehavior::Honest; 3],
            );
            authority.consult(0, black_box(&spec))
        })
    });
    group.bench_function("end_to_end_participation", |b| {
        let spec = GameSpec::Participation(ra_solvers::ParticipationParams::paper_example());
        b.iter(|| {
            let mut authority = RationalityAuthority::new(
                Inventor::new(0, InventorBehavior::Honest),
                &[VerifierBehavior::Honest; 3],
            );
            authority.consult(0, black_box(&spec))
        })
    });
    group.finish();
}

fn bench_exact_arith(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact");
    let a: ra_exact::BigInt = "123456789012345678901234567890123456789".parse().unwrap();
    let b_int: ra_exact::BigInt = "987654321098765432109876543210".parse().unwrap();
    group.bench_function("bigint_mul", |bench| {
        bench.iter(|| black_box(&a) * black_box(&b_int))
    });
    group.bench_function("bigint_divrem", |bench| {
        bench.iter(|| black_box(&a).div_rem(black_box(&b_int)))
    });
    let x = rat(355, 113);
    let y = rat(-833_719, 265_381);
    group.bench_function("rational_mul", |bench| {
        bench.iter(|| black_box(&x) * black_box(&y))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_p2, bench_wire, bench_exact_vs_f64, bench_session, bench_exact_arith
}
criterion_main!(benches);
