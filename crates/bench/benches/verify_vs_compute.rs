//! Criterion bench: the §4 / Lemma 1 asymmetry — inventor-side equilibrium
//! computation vs agent-side P1 verification, on the same games.
//!
//! Run with `cargo bench -p ra-bench --bench verify_vs_compute`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ra_games::GameGenerator;
use ra_proofs::{verify_support_certificate, SupportCertificate};
use ra_solvers::{enumerate_equilibria, lemke_howson, EnumerationOptions};

fn prepared(n: usize) -> (ra_games::BimatrixGame, SupportCertificate) {
    // Scan seeds for a game whose first equilibrium verifies via P1
    // (nondegenerate), so every arm benches the same instance.
    for seed in 0..50u64 {
        let game = GameGenerator::seeded(7000 + 100 * n as u64 + seed).bimatrix(n, n, -100..=100);
        let (eqs, _) = enumerate_equilibria(&game, &EnumerationOptions::default());
        if let Some(eq) = eqs.first() {
            let cert = SupportCertificate {
                row_support: eq.row_support.clone(),
                col_support: eq.col_support.clone(),
            };
            if verify_support_certificate(&game, &cert).is_ok() {
                return (game, cert);
            }
        }
    }
    panic!("no suitable instance found for n = {n}");
}

fn bench_verify_vs_compute(c: &mut Criterion) {
    let mut group = c.benchmark_group("bimatrix");
    for n in [2usize, 3, 4, 5] {
        let (game, cert) = prepared(n);
        group.bench_with_input(BenchmarkId::new("compute/support_enum", n), &n, |b, _| {
            b.iter(|| enumerate_equilibria(black_box(&game), &EnumerationOptions::default()))
        });
        group.bench_with_input(BenchmarkId::new("compute/lemke_howson", n), &n, |b, _| {
            b.iter(|| lemke_howson(black_box(&game), 0).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("verify/p1", n), &n, |b, _| {
            b.iter(|| verify_support_certificate(black_box(&game), black_box(&cert)).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_verify_vs_compute
}
criterion_main!(benches);
