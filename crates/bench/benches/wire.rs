//! Criterion bench: the wire layer's consult hot path — message
//! encode/decode round-trips and varint packing, with the pooled
//! frame-scratch length measurement benched against a fresh-`Vec`
//! serialization so the frame-pooling win stays visible in
//! `results/criterion.jsonl` and not just end-to-end.
//!
//! Run with `cargo bench -p ra-bench --bench wire`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ra_authority::{get_varint, put_varint, with_frame_scratch, Advice, Message, Wire, WireBytes};
use ra_proofs::SupportCertificate;

/// The two frames `Bus::send` measures most on a consult: the request the
/// agent opens with, and the proof-carrying advice that fans out.
fn hot_messages() -> Vec<(&'static str, Message)> {
    let advice = Advice::Support(SupportCertificate {
        row_support: vec![0, 2, 5, 9],
        col_support: vec![1, 3, 4],
    });
    vec![
        (
            "advice_request",
            Message::AdviceRequest {
                game_id: 0xDEAD_BEEF,
            },
        ),
        (
            "advice_with_proof",
            Message::AdviceWithProof {
                game_id: 0xDEAD_BEEF,
                advice: Box::new(advice.clone()),
            },
        ),
        (
            "verdict_request",
            Message::VerdictRequest {
                game_id: 0xDEAD_BEEF,
                advice: Arc::new(advice),
            },
        ),
    ]
}

fn bench_frames(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    for (name, msg) in hot_messages() {
        // What the pre-pooling bus paid per frame: a fresh allocation.
        group.bench_with_input(BenchmarkId::new("encode/fresh_vec", name), &msg, |b, m| {
            b.iter(|| black_box(m).to_bytes())
        });
        // What it pays now: encode into the recycled thread-local scratch.
        group.bench_with_input(BenchmarkId::new("encode/pooled", name), &msg, |b, m| {
            b.iter(|| black_box(m).encoded_len())
        });
        let bytes = msg.to_bytes();
        group.bench_with_input(BenchmarkId::new("decode", name), &bytes, |b, bytes| {
            b.iter(|| {
                let mut cursor = bytes.clone();
                Message::decode(black_box(&mut cursor)).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_varints(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire");
    let values: Vec<u64> = (0..64).map(|i| (1u64 << i).wrapping_sub(i)).collect();
    group.bench_function("varint/round_trip_64", |b| {
        b.iter(|| {
            with_frame_scratch(|buf| {
                for &v in &values {
                    put_varint(buf, black_box(v));
                }
                let mut cursor = WireBytes::from(buf.clone());
                let mut sum = 0u64;
                while !cursor.is_empty() {
                    sum = sum.wrapping_add(get_varint(&mut cursor).unwrap());
                }
                sum
            })
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frames, bench_varints
}
criterion_main!(benches);
