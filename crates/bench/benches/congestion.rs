//! Criterion bench: the §6 parallel-links strategies (Fig. 7 inner loop)
//! and the online-advice certificate verification.
//!
//! Includes the ablation: inventor advice with running-average
//! statistics vs the known-distribution prior (the paper describes both
//! inventor models).
//!
//! Run with `cargo bench -p ra-bench --bench congestion`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ra_congestion::{greedy_assign, inventor_assign, inventor_suggested_link, lpt_assign};
use ra_exact::Rational;
use ra_proofs::{honest_online_advice, verify_online_advice};

fn loads(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(0..=1000)).collect()
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7_inner");
    for m in [10usize, 100, 500] {
        let ws = loads(1000, 99);
        group.bench_with_input(BenchmarkId::new("greedy", m), &m, |b, &m| {
            b.iter(|| greedy_assign(black_box(&ws), m))
        });
        group.bench_with_input(BenchmarkId::new("inventor/running_avg", m), &m, |b, &m| {
            b.iter(|| inventor_assign(black_box(&ws), m))
        });
        // Ablation: known-distribution prior — the inventor knows the true
        // mean (500) instead of estimating it online.
        group.bench_with_input(BenchmarkId::new("inventor/known_prior", m), &m, |b, &m| {
            b.iter(|| {
                let n = ws.len();
                let mut link_loads = vec![0u64; m];
                for (i, &w) in ws.iter().enumerate() {
                    let link = inventor_suggested_link(&link_loads, w, 500.0, n - i - 1);
                    link_loads[link] += w;
                }
                link_loads
            })
        });
        group.bench_with_input(BenchmarkId::new("offline/lpt", m), &m, |b, &m| {
            b.iter(|| lpt_assign(black_box(&ws), m))
        });
    }
    group.finish();
}

fn bench_advice_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_advice");
    for future in [10usize, 100, 500] {
        let current: Vec<Rational> = (0..20).map(|i| Rational::from(i * 37 % 900)).collect();
        let cert = honest_online_advice(
            &current,
            &Rational::from(650),
            &Rational::new(1001, 2),
            future,
        );
        group.bench_with_input(
            BenchmarkId::new("verify_certificate", future),
            &future,
            |b, _| b.iter(|| verify_online_advice(black_box(&cert)).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_strategies, bench_advice_verification
}
criterion_main!(benches);
