//! Criterion bench: §3 kernel certificate checking vs exhaustive search,
//! and the §5 participation solve-vs-verify pair.
//!
//! Run with `cargo bench -p ra-bench --bench certificates`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ra_exact::{rat, Rational};
use ra_games::GameGenerator;
use ra_proofs::kernel::{check_prehashed, game_fingerprint};
use ra_proofs::{
    prove_is_nash, prove_max_nash, verify_participation_certificate, ParticipationCertificate,
};
use ra_solvers::{analyze_pure_nash, solve_participation_equilibrium, ParticipationParams};

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec3");
    for s in [4usize, 8, 16, 32] {
        let (game, eq, maximal) = (0..50u64)
            .find_map(|seed| {
                let game =
                    GameGenerator::seeded(s as u64 * 31 + seed).strategic(vec![s, s], -1000..=1000);
                let analysis = analyze_pure_nash(&game);
                let eq = analysis.equilibria.first()?.clone();
                let maximal = analysis.maximal.first()?.clone();
                Some((game, eq, maximal))
            })
            .expect("instance with equilibria");
        let fp = game_fingerprint(&game);
        let nash_proof = prove_is_nash(eq);
        let max_proof = prove_max_nash(&game, &maximal).expect("maximal provable");
        group.bench_with_input(BenchmarkId::new("search/exhaustive", s), &s, |b, _| {
            b.iter(|| analyze_pure_nash(black_box(&game)))
        });
        group.bench_with_input(BenchmarkId::new("check/is_nash", s), &s, |b, _| {
            b.iter(|| check_prehashed(black_box(&game), fp, black_box(&nash_proof)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("check/is_max_nash", s), &s, |b, _| {
            b.iter(|| check_prehashed(black_box(&game), fp, black_box(&max_proof)).unwrap())
        });
    }
    group.finish();
}

fn bench_participation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec5");
    for n in [5u64, 10, 20, 40] {
        let params = ParticipationParams::new(n, 2, Rational::from(10), Rational::from(1)).unwrap();
        let tol = rat(1, 1 << 24);
        let roots = solve_participation_equilibrium(&params, &tol).unwrap();
        let cert = ParticipationCertificate {
            params: params.clone(),
            root: roots[0].clone(),
        };
        group.bench_with_input(BenchmarkId::new("solve/bisection", n), &n, |b, _| {
            b.iter(|| solve_participation_equilibrium(black_box(&params), &tol).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("verify/eq5", n), &n, |b, _| {
            b.iter(|| verify_participation_certificate(black_box(&cert), &tol).unwrap())
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernel, bench_participation
}
criterion_main!(benches);
