//! # rationality-authority — facade crate
//!
//! A faithful, from-scratch reproduction of the system described in
//! *"Rationality Authority for Provable Rational Behavior"*
//! (Dolev, Panagopoulou, Rabie, Schiller, Spirakis — PODC 2011 brief
//! announcement; full version LNCS 9295, 2015).
//!
//! The rationality authority lets ordinary agents act rationally in games by
//! consulting possibly-biased *game inventors*, whose advice is accepted only
//! after a *checkable proof* of feasibility and optimality passes a trusted
//! *verification procedure*.
//!
//! This crate re-exports the workspace members under stable module names:
//!
//! * [`exact`] — arbitrary-precision rationals and exact linear algebra.
//! * [`games`] — strategic-form / bimatrix / symmetric games.
//! * [`solvers`] — inventor-side (expensive) equilibrium computation.
//! * [`proofs`] — certificates, interactive proofs and the proof kernel.
//! * [`congestion`] — online network congestion games (§6).
//! * [`auctions`] — the participation game and auction case studies (§5).
//! * [`authority`] — the distributed infrastructure: roles, message bus,
//!   verifier marketplace, the pluggable reputation plane
//!   ([`authority::ReputationBackend`]: process-local scores or
//!   epoch-gossiped cross-shard CRDT counters), end-to-end sessions, and
//!   the sharded multi-bus session engine
//!   ([`authority::ShardedAuthority`]) for batched consultations.
//!
//! See `examples/quickstart.rs` for an end-to-end session.

pub use ra_auctions as auctions;
pub use ra_authority as authority;
pub use ra_congestion as congestion;
pub use ra_exact as exact;
pub use ra_games as games;
pub use ra_proofs as proofs;
pub use ra_solvers as solvers;
