//! Sharded consultations: the rationality authority as a service.
//!
//! Sixty-four agents consult the authority at once. A `ShardedAuthority`
//! with four shards — each its own bus, inventor handle, verifier panel
//! and reputation store — routes every agent to its home shard by a
//! deterministic hash and fans the batch over a persistent pool of
//! shard-pinned worker threads (spun up lazily on the first batch and
//! reused by every later one; built with `--no-default-features` the
//! batch runs inline instead). The outcomes are exactly what sequential,
//! routed consultations would have produced; only the wall clock
//! changes.
//!
//! Run with: `cargo run --example sharded_throughput`

use std::sync::Arc;

use rationality_authority::authority::{
    GameSpec, InventorBehavior, ShardedAuthority, VerifierBehavior,
};
use rationality_authority::games::named::{battle_of_the_sexes, prisoners_dilemma};

fn main() {
    let specs = [
        GameSpec::Strategic(prisoners_dilemma().to_strategic()),
        GameSpec::Bimatrix(battle_of_the_sexes()),
    ];
    let specs = specs.map(Arc::new);
    let requests: Vec<(u64, Arc<GameSpec>)> = (0..64u64)
        .map(|agent| (agent, Arc::clone(&specs[(agent % 2) as usize])))
        .collect();

    let engine = ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
    println!(
        "fanning {} consultations across 4 shards…\n",
        requests.len()
    );
    let outcomes = engine.consult_batch(&requests);
    // A second batch on the same engine reuses the parked pool workers —
    // no re-spawning, which is what keeps epoch-chunked gossip batches
    // fast at scale (see docs/ARCHITECTURE.md, "Worker-pool lifecycle").
    let again = engine.consult_batch(&requests[..8]);
    assert!(again.iter().all(|o| o.adopted));

    let adopted = outcomes.iter().filter(|o| o.adopted).count();
    println!("adopted: {adopted}/{}", outcomes.len());
    // One locked pass over the shards collects all three accounting views.
    let stats = engine.shard_stats();
    println!(
        "total traffic: {} messages, {} bytes",
        stats.message_count, stats.total_bytes
    );
    for (shard, bytes) in stats.shard_bytes.into_iter().enumerate() {
        let agents = requests
            .iter()
            .filter(|(a, _)| engine.shard_of(*a) == shard)
            .count();
        println!("  shard {shard}: {agents} agents, {bytes} wire bytes");
    }

    // The batch is deterministic: a fresh engine consulted sequentially,
    // one agent at a time, reaches the identical decisions.
    let sequential =
        ShardedAuthority::new(4, InventorBehavior::Honest, &[VerifierBehavior::Honest; 3]);
    let all_match = requests
        .iter()
        .zip(&outcomes)
        .all(|((agent, spec), batched)| {
            sequential.consult(*agent, spec.as_ref()).adopted == batched.adopted
        });
    println!("\nbatch == sequential routed calls: {all_match}");
    assert!(all_match);
}
