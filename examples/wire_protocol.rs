//! The P2 interactive proof as an actual wire protocol.
//!
//! Unlike `private_consultation` (which runs the verifier locally), this
//! example pushes every advice message, oracle query and one-bit answer
//! through the byte-accounted message bus — the deployment shape of
//! Fig. 1. The bus log then shows exactly how much opponent information
//! ever crossed the wire.
//!
//! Run with: `cargo run --example wire_protocol`

use rand::rngs::StdRng;
use rand::SeedableRng;

use rationality_authority::authority::{run_p2_session, Bus, P2Prover};
use rationality_authority::games::{GameGenerator, MixedProfile, MixedStrategy};
use rationality_authority::solvers::find_one_equilibrium;

fn main() {
    let game = GameGenerator::seeded(4242).bimatrix(5, 5, -30..=30);
    let eq = find_one_equilibrium(&game).expect("equilibrium exists");
    println!(
        "Game: random 5x5 bimatrix; equilibrium supports {:?} / {:?}",
        eq.row_support, eq.col_support
    );

    // ---- Honest prover ----------------------------------------------------
    let bus = Bus::new();
    let prover = P2Prover::honest(0, eq.profile.clone());
    let mut rng = StdRng::seed_from_u64(17);
    let outcome = run_p2_session(&bus, &game, &prover, /*agent*/ 0, 3, 500, &mut rng);
    println!("\n[honest prover over the bus]");
    println!("  accepted:                {}", outcome.accepted);
    println!("  oracle queries:          {}", outcome.queries);
    println!("  session bytes on wire:   {}", outcome.session_bytes);
    println!(
        "  opponent-revealing bytes: {} ({} one-bit answers, framed)",
        outcome.opponent_answer_bytes, outcome.queries
    );
    assert!(outcome.accepted);

    // ---- A maximally dishonest oracle --------------------------------------
    // Construct a game with a strictly dominated column so membership lies
    // are detectable, then let the prover invert every answer.
    let game = rationality_authority::games::BimatrixGame::from_i64_tables(
        &[&[2, 0, 0], &[0, 1, 0]],
        &[&[1, 0, -1], &[0, 2, -1]],
    );
    let profile = MixedProfile {
        row: MixedStrategy::try_new(vec![
            rationality_authority::exact::rat(2, 3),
            rationality_authority::exact::rat(1, 3),
        ])
        .unwrap(),
        col: MixedStrategy::try_new(vec![
            rationality_authority::exact::rat(1, 3),
            rationality_authority::exact::rat(2, 3),
            rationality_authority::exact::rat(0, 1),
        ])
        .unwrap(),
    };
    assert!(game.is_nash(&profile));
    let bus = Bus::new();
    let prover = P2Prover::lying(1, profile);
    let mut caught = 0;
    let runs = 10;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed);
        let outcome = run_p2_session(&bus, &game, &prover, seed, 3, 200, &mut rng);
        if !outcome.accepted {
            caught += 1;
        }
    }
    println!("\n[lying prover] caught in {caught}/{runs} sessions");
    assert!(caught >= 7);
    println!(
        "\nTotal wire traffic across all sessions: {} bytes",
        bus.total_bytes()
    );
}
