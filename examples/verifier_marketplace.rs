//! The verifier marketplace: majority trust, reputation, and the audit
//! trail.
//!
//! Verifiers "profit from selling general purpose verification procedures
//! … and therefore would like to have a good long-lasting reputation".
//! This example runs many consultations through a mixed panel — honest,
//! bought (always-accept), saboteur (always-reject) and flaky — and shows
//! the reputation system excluding the bad ones while the majority keeps
//! agents safe. It also demonstrates the signed statistics ledger that
//! keeps the *inventor* accountable (§6 footnote 3).
//!
//! Run with: `cargo run --example verifier_marketplace`

use rationality_authority::authority::{
    GameSpec, Inventor, InventorBehavior, Party, RationalityAuthority, SigningKey,
    StatisticsLedger, VerifierBehavior,
};
use rationality_authority::exact::Rational;
use rationality_authority::games::GameGenerator;

fn main() {
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysAccept,
        VerifierBehavior::AlwaysReject,
        VerifierBehavior::Random {
            accept_per_mille: 500,
        },
    ];
    let mut authority =
        RationalityAuthority::new(Inventor::new(0, InventorBehavior::Honest), &panel);

    println!("Panel: 3 honest, 1 bought, 1 saboteur, 1 flaky verifier.");
    println!("Running 40 consultations on random games...\n");
    let mut adopted = 0;
    for round in 0..40u64 {
        let game = GameGenerator::seeded(round).strategic(vec![3, 3], -9..=9);
        if game.pure_nash_equilibria().is_empty() {
            continue; // the honest inventor declines these
        }
        let outcome = authority.consult(round, &GameSpec::Strategic(game));
        if outcome.adopted {
            adopted += 1;
        }
    }
    println!("Adopted {adopted} honest advices despite the faulty minority.\n");

    println!("Reputation scores after the run:");
    for i in 0..panel.len() as u64 {
        let v = Party::Verifier(i);
        let trusted = authority.reputation().is_trusted(v);
        println!(
            "  {v}: score {:>4}  {}",
            authority.reputation().score(v),
            if trusted { "(trusted)" } else { "(EXCLUDED)" }
        );
    }
    let trusted = authority.reputation().trusted_verifiers();
    println!("\nStill consulted: {trusted:?}");
    assert!(trusted.contains(&Party::Verifier(0)));
    assert!(
        !trusted.contains(&Party::Verifier(4)),
        "saboteur must be excluded"
    );

    // ---- The inventor-side audit trail -------------------------------------
    println!("\nSigned statistics ledger (inventor accountability):");
    let key = SigningKey::derive("inventor-0");
    let mut ledger = StatisticsLedger::new();
    for round in 1..=5u64 {
        ledger.publish(&key, round, vec![Rational::from(490 + round as i64)]);
    }
    assert!(ledger.audit(&key).is_ok());
    println!("  5 rounds published and audited clean.");
    // An impostor's key fails the audit:
    let impostor = SigningKey::derive("impostor");
    assert!(ledger.audit(&impostor).is_err());
    println!("  An impostor key fails the audit — records are attributable.");
}
