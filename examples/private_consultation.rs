//! Private consultation: the P1 vs P2 interactive proofs of §4.
//!
//! A bimatrix game's mixed equilibrium is PPAD-hard to compute, but easy to
//! verify given the right certificate. P1 reveals both supports; P2 reveals
//! only the agent's own data plus the equilibrium values, probing the
//! opponent's support through one-bit oracle answers. This example runs
//! both on the same game and prints the measured disclosure, reproducing
//! the Remark 2 privacy comparison.
//!
//! Run with: `cargo run --example private_consultation`

use rand::rngs::StdRng;
use rand::SeedableRng;

use rationality_authority::games::GameGenerator;
use rationality_authority::proofs::{
    honest_row_advice, verify_private_advice, verify_support_certificate, HonestOracle, P2Config,
    P2Outcome, SupportCertificate,
};
use rationality_authority::solvers::find_one_equilibrium;

fn main() {
    // A random 6×6 bimatrix game — large enough that nobody wants to solve
    // it by hand.
    let game = GameGenerator::seeded(2011).bimatrix(6, 6, -50..=50);
    println!("Game: random 6x6 bimatrix (seed 2011)");

    // Inventor side: the expensive computation (support enumeration).
    let eq = find_one_equilibrium(&game).expect("equilibrium exists (Nash)");
    println!(
        "Inventor found an equilibrium: row support {:?}, column support {:?}",
        eq.row_support, eq.col_support
    );

    // ---- P1: support certificate ----------------------------------------
    let cert = SupportCertificate {
        row_support: eq.row_support.clone(),
        col_support: eq.col_support.clone(),
    };
    let p1 = verify_support_certificate(&game, &cert).expect("honest P1 verifies");
    println!("\n[P1] verification accepted");
    println!("  λ1 = {}, λ2 = {}", p1.lambda1, p1.lambda2);
    println!("  bits communicated:        {}", p1.transcript.total_bits());
    println!(
        "  opponent bits disclosed:  {}  (the whole column support!)",
        p1.transcript.opponent_bits_disclosed()
    );

    // ---- P2: private interactive proof -----------------------------------
    let advice = honest_row_advice(&game, &eq.profile);
    let mut oracle = HonestOracle::new(eq.col_support.clone());
    let mut rng = StdRng::seed_from_u64(7);
    let outcome = verify_private_advice(
        &game,
        &advice,
        &mut oracle,
        &mut rng,
        &P2Config {
            required_conclusive: 3,
            max_queries: 1000,
        },
    );
    match &outcome {
        P2Outcome::Accepted {
            conclusive_tests,
            transcript,
        } => {
            println!("\n[P2] verification accepted");
            println!("  conclusive pair tests:    {conclusive_tests}");
            println!("  oracle queries:           {}", transcript.num_queries());
            println!(
                "  opponent bits disclosed:  {}  (one bit per oracle answer)",
                transcript.opponent_bits_disclosed()
            );
        }
        other => panic!("honest P2 run must accept, got {other:?}"),
    }

    // ---- The punchline ---------------------------------------------------
    println!(
        "\nP1 disclosed the opponent's entire support ({} bits); \
         P2 disclosed {} bits and never shipped the support at all.",
        p1.transcript.opponent_bits_disclosed(),
        outcome.transcript().opponent_bits_disclosed(),
    );

    // A dishonest λ is caught by P2's random probing:
    let mut dishonest = advice;
    dishonest.lambda_opp = &dishonest.lambda_opp + &rationality_authority::exact::rat(1, 3);
    let mut oracle = HonestOracle::new(eq.col_support);
    let mut rng = StdRng::seed_from_u64(8);
    let outcome = verify_private_advice(
        &game,
        &dishonest,
        &mut oracle,
        &mut rng,
        &P2Config::default(),
    );
    assert!(!outcome.is_accepted());
    println!("A perturbed λ2 was rejected by P2, as it should be.");
}
