//! Cross-shard reputation gossip: exclusion anywhere becomes exclusion
//! everywhere — and the merge traffic itself is byte-accounted.
//!
//! A four-shard engine serves a panel with one persistent saboteur
//! (`AlwaysReject` against an honest inventor). All early consultations
//! come from agents pinned to one shard, so only that shard *observes*
//! the deviance. Under `ReputationPolicy::Isolated` the saboteur keeps
//! serving the other three shards indefinitely; under
//! `ReputationPolicy::Gossip` the shards merge PN-counter deltas at epoch
//! boundaries — as real framed `Message::Gossip` sends on a dedicated
//! inter-shard bus, so `shard_stats()` reports the control-plane bytes
//! next to the consultation bytes — and the saboteur is voted out
//! engine-wide within one epoch, with no cross-shard lock ever taken on
//! the consult hot path. `ReputationPolicy::Adaptive` reacts to the
//! dissent burst and syncs before the epoch is up.
//!
//! Run with: `cargo run --example reputation_gossip`

use rationality_authority::authority::{
    GameSpec, InventorBehavior, Party, ReputationPolicy, ShardedAuthority, VerifierBehavior,
};
use rationality_authority::games::named::prisoners_dilemma;

const EPOCH: usize = 8;

fn trust_row(engine: &ShardedAuthority, saboteur: Party) -> String {
    (0..engine.shard_count())
        .map(|s| {
            let trusted = engine.with_shard(s, |a| a.reputation().is_trusted(saboteur));
            format!(
                "shard {s}: {}",
                if trusted { "trusted " } else { "EXCLUDED" }
            )
        })
        .collect::<Vec<_>>()
        .join("   ")
}

fn main() {
    let panel = [
        VerifierBehavior::Honest,
        VerifierBehavior::Honest,
        VerifierBehavior::AlwaysReject, // Verifier(2), the saboteur
    ];
    let saboteur = Party::Verifier(2);
    let spec = GameSpec::Strategic(prisoners_dilemma().to_strategic());

    let engine = ShardedAuthority::with_policy(
        4,
        InventorBehavior::Honest,
        &panel,
        ReputationPolicy::Gossip { every: EPOCH },
    );
    println!(
        "4 shards, panel = [Honest, Honest, AlwaysReject], \
         policy = Gossip {{ every: {EPOCH} }}\n"
    );

    // Agents that all hash to the same home shard: only it sees dissent.
    let home = engine.shard_of(0);
    let mut pinned = (0..u64::MAX).filter(|&a| engine.shard_of(a) == home);
    println!("consulting only agents homed on shard {home}…");
    let mut consultations = 0;
    while engine.with_shard(home, |a| a.reputation().is_trusted(saboteur)) {
        engine.consult(pinned.next().expect("pinned agents"), &spec);
        consultations += 1;
        assert!(
            consultations <= 32,
            "home shard never excluded the saboteur"
        );
    }
    println!("after {consultations} consultations the observing shard votes it out:");
    println!("  {}\n", trust_row(&engine, saboteur));

    // One more epoch of traffic carries the exclusion everywhere.
    while !(0..engine.shard_count())
        .all(|s| engine.with_shard(s, |a| !a.reputation().is_trusted(saboteur)))
    {
        engine.consult(pinned.next().expect("pinned agents"), &spec);
        consultations += 1;
        assert!(consultations <= 64, "gossip never propagated the exclusion");
    }
    println!("after {consultations} consultations (≤ one epoch later) gossip has spread it:");
    println!("  {}\n", trust_row(&engine, saboteur));

    // A consultation on a foreign shard now runs without the saboteur.
    let away = (0..u64::MAX)
        .find(|&a| engine.shard_of(a) != home)
        .expect("an agent homed elsewhere");
    let outcome = engine.consult(away, &spec);
    println!(
        "agent {away} (shard {}) consults: adopted={}, verifiers answering={}",
        engine.shard_of(away),
        outcome.adopted,
        outcome.verdict_details.len()
    );
    assert!(outcome.adopted);
    assert_eq!(outcome.verdict_details.len(), 2, "saboteur engine-wide out");

    // The control plane is measurable: every epoch merge crossed the
    // dedicated inter-shard bus as framed sends.
    let stats = engine.shard_stats();
    println!(
        "\nLemma 1 accounting — consultation plane: {} bytes in {} messages; \
         gossip plane: {} bytes in {} messages ({:.1} gossip bytes/consultation)",
        stats.total_bytes,
        stats.message_count,
        stats.gossip_bytes,
        stats.gossip_messages,
        stats.gossip_bytes as f64 / consultations as f64,
    );
    assert!(stats.gossip_bytes > 0, "merges are real framed sends");

    // Pulls are version-vectored: each shard keeps a watermark of the hub
    // versions it has merged, and the hub ships only unseen slots. Once
    // the engine has converged, a re-sync costs the (tiny, unchanged)
    // push frames and *zero* pull bytes — no snapshot re-framing.
    let bus = engine.gossip_bus().expect("gossip engine has a bus");
    let pull_bytes = |bus: &dyn rationality_authority::authority::Transport| {
        (0..engine.shard_count() as u64)
            .map(|s| {
                bus.bytes_between(
                    rationality_authority::authority::GOSSIP_HUB,
                    Party::Shard(s),
                )
            })
            .sum::<usize>()
    };
    engine.sync_reputation();
    let converged = pull_bytes(bus);
    engine.sync_reputation();
    let idle = pull_bytes(bus) - converged;
    println!(
        "\nversioned pulls — pull bytes after convergence: {converged}; \
         an idle re-sync adds {idle} pull bytes (the hub answers \
         watermarked pulls with nothing)"
    );
    assert_eq!(idle, 0, "up-to-date shards pull for free");

    // An adaptive engine reacts to the dissent burst instead of waiting
    // out the epoch: same cadence ceiling, earlier engine-wide exclusion.
    let adaptive = ShardedAuthority::with_policy(
        4,
        InventorBehavior::Honest,
        &panel,
        ReputationPolicy::Adaptive {
            every: 64,
            check_every: 4,
            burst: 2,
        },
    );
    let mut pinned = (0..u64::MAX).filter(|&a| adaptive.shard_of(a) == home);
    let mut adaptive_consultations = 0;
    while !(0..adaptive.shard_count())
        .all(|s| adaptive.with_shard(s, |a| !a.reputation().is_trusted(saboteur)))
    {
        adaptive.consult(pinned.next().expect("pinned agents"), &spec);
        adaptive_consultations += 1;
        assert!(adaptive_consultations <= 64, "burst trigger never fired");
    }
    println!(
        "\nAdaptive {{ every: 64, check_every: 4, burst: 2 }} excludes engine-wide \
         after {adaptive_consultations} consultations — before its 64-consultation \
         epoch ever elapses."
    );

    // Contrast: the isolated policy never propagates the exclusion.
    let isolated = ShardedAuthority::new(4, InventorBehavior::Honest, &panel);
    let mut pinned = (0..u64::MAX).filter(|&a| isolated.shard_of(a) == home);
    let mut drained = 0;
    while isolated.with_shard(home, |a| a.reputation().is_trusted(saboteur)) {
        isolated.consult(pinned.next().expect("pinned agents"), &spec);
        drained += 1;
        assert!(drained <= 32, "home shard never excluded the saboteur");
    }
    println!("\nsame traffic under ReputationPolicy::Isolated:");
    println!("  {}", trust_row(&isolated, saboteur));
    let still_serving = (0..isolated.shard_count())
        .filter(|&s| isolated.with_shard(s, |a| a.reputation().is_trusted(saboteur)))
        .count();
    assert_eq!(still_serving, 3, "isolated shards keep trusting");
    println!(
        "\nthe saboteur still serves {still_serving}/4 shards under Isolated — \
         the gap the gossip plane closes."
    );
}
