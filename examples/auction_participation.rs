//! The participation game (§5): offline certificates, online last-mover
//! advice, and the firms' cross-check.
//!
//! Run with: `cargo run --example auction_participation`

use rationality_authority::auctions::{
    exact_online_expected_gain, last_mover_advice, last_mover_gain, verify_last_mover_advice,
    ParticipationGame,
};
use rationality_authority::exact::rat;
use rationality_authority::proofs::{
    cross_check_advice, verify_participation_certificate, ParticipationCertificate,
};
use rationality_authority::solvers::EquilibriumRoot;

fn main() {
    // The paper's worked example: n = 3 firms, threshold k = 2,
    // v = 8, c = 3 (c/v = 3/8).
    let game = ParticipationGame::paper_example();
    let params = game.params().clone();
    println!(
        "Participation game: n = {}, k = {}, v = {}, c = {}",
        params.n, params.k, params.v, params.c
    );

    // ---- Offline: the inventor's certificate ------------------------------
    let cert = game
        .inventor_advice(&rat(1, 1 << 30))
        .expect("equilibrium exists");
    let verified = verify_participation_certificate(&cert, &rat(1, 1 << 20))
        .expect("honest certificate verifies");
    println!(
        "\n[offline] advised participation probability p = {}",
        verified.p
    );
    println!("  A_k (≥1 other in | f in)   = {}", verified.a_k);
    println!("  C_k (≥2 others in | f out) = {}", verified.c_k);
    println!(
        "  expected equilibrium gain  = {}  (the paper's v/16)",
        verified.expected_gain
    );

    // A perturbed p is caught:
    let bogus = ParticipationCertificate {
        params: params.clone(),
        root: EquilibriumRoot::Exact(rat(1, 3)),
    };
    assert!(verify_participation_certificate(&bogus, &rat(1, 1024)).is_err());
    println!("  (a perturbed p = 1/3 was rejected by Eq. (5))");

    // The cross-check: both symmetric equilibria verify individually, so a
    // dishonest prover could split the firms across them — unless they
    // compare notes.
    let other = ParticipationCertificate {
        params: params.clone(),
        root: EquilibriumRoot::Exact(rat(3, 4)),
    };
    assert!(verify_participation_certificate(&other, &rat(1, 1024)).is_ok());
    assert!(!cross_check_advice(&[cert.clone(), other]));
    println!("  (split advice p = 1/4 vs p = 3/4 caught by the firms' cross-check)");

    // ---- Online: last-mover advice ----------------------------------------
    println!("\n[online] last firm to decide, by observed entry count:");
    for prior in 0..3 {
        let advice = last_mover_advice(&params, prior);
        let gain = verify_last_mover_advice(&params, &advice).expect("honest advice optimal");
        let flipped = last_mover_gain(&params, prior, !advice.participate);
        println!(
            "  {prior} prior entrant(s): advice p = {} -> gain {gain} (flipping would yield {flipped})",
            u8::from(advice.participate),
        );
    }

    // The expected-gain comparison of the paper.
    let online = exact_online_expected_gain(&params, &rat(1, 4));
    println!("\nExpected gain per firm, random arrival order:");
    println!("  offline equilibrium play: v/16       = {}", rat(1, 2));
    println!("  paper's online lower bound: 5v/24    = {}", rat(5, 3));
    println!("  exact online value computed here     = {online}");
    assert!(online > rat(5, 3));
}
