//! Online congestion (§6): greedy vs the inventor's verified advice.
//!
//! First the Fig. 6 story — why greedy arrival-time best-replies disappoint
//! in hindsight — then a parallel-links run where every arriving agent
//! verifies the inventor's advice certificate before obeying it, and a
//! mini Fig. 7 sweep.
//!
//! Run with: `cargo run --example online_congestion --release`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rationality_authority::congestion::{
    fig6_outcome, greedy_assign, inventor_assign, run_fig7, Fig7Config,
};
use rationality_authority::exact::Rational;
use rationality_authority::proofs::{honest_online_advice, verify_online_advice};

fn main() {
    // ---- Fig. 6 ----------------------------------------------------------
    println!("Fig. 6 — greedy is not hindsight-optimal (identity delays, unit loads):");
    for k in [1u64, 5, 20] {
        let (experienced, hindsight) = fig6_outcome(k);
        println!(
            "  k = {k:>2}: greedy agent ends with delay {experienced}, \
             hindsight best-reply {hindsight}"
        );
    }

    // ---- One verified online run ------------------------------------------
    println!("\nParallel links: 20 agents, 4 links, every advice verified:");
    let mut rng = StdRng::seed_from_u64(42);
    let loads: Vec<u64> = (0..20).map(|_| rng.random_range(0..=1000)).collect();
    let mut link_loads = vec![Rational::zero(); 4];
    let mut observed = 0u64;
    for (i, &w) in loads.iter().enumerate() {
        observed += w;
        let average = Rational::new(observed as i64, (i + 1) as i64);
        let cert = honest_online_advice(
            &link_loads,
            &Rational::from(w as i64),
            &average,
            loads.len() - i - 1,
        );
        // The agent trusts nothing: it checks the Nash property of the
        // shipped assignment before moving.
        let verified = verify_online_advice(&cert).expect("honest certificate verifies");
        link_loads[verified.link] = &link_loads[verified.link] + &Rational::from(w as i64);
        if i < 3 || i == loads.len() - 1 {
            println!(
                "  agent {i:>2} (load {w:>4}): verified advice -> link {} \
                 (predicted delay {})",
                verified.link, verified.predicted_own_delay
            );
        } else if i == 3 {
            println!("  ...");
        }
    }
    let final_makespan = link_loads.iter().max().unwrap();
    let greedy = greedy_assign(&loads, 4).makespan();
    let inventor = inventor_assign(&loads, 4).makespan();
    println!("  final makespan (advised): {final_makespan}");
    println!("  greedy would have ended at {greedy}, pure-inventor at {inventor}");

    // ---- Mini Fig. 7 -------------------------------------------------------
    println!("\nMini Fig. 7 (300 agents, 30 iterations/point):");
    let config = Fig7Config {
        num_agents: 300,
        load_range: (0, 1000),
        link_counts: vec![2, 10, 40, 120],
        iterations: 30,
        seed: 2011,
    };
    println!(
        "  {:>5} {:>22} {:>18} {:>8}",
        "m", "inventor better (%)", "greedy better (%)", "ties (%)"
    );
    for point in run_fig7(&config) {
        println!(
            "  {:>5} {:>22.1} {:>18.1} {:>8.1}",
            point.m,
            point.inventor_strictly_better_pct,
            point.greedy_strictly_better_pct,
            point.tie_pct
        );
    }
    println!("\nRun `cargo run -p ra-bench --release --bin fig7` for the full paper sweep.");
}
