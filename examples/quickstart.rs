//! Quickstart: one complete consultation through the rationality authority.
//!
//! An ordinary agent faces a prisoner's dilemma. It cannot (or will not)
//! analyse the game itself, so it consults a *possibly biased* game
//! inventor and verifies the returned advice through a trusted verifier
//! panel before acting.
//!
//! Run with: `cargo run --example quickstart`

use rationality_authority::authority::{
    GameSpec, Inventor, InventorBehavior, RationalityAuthority, VerifierBehavior,
};
use rationality_authority::games::named::prisoners_dilemma;

fn main() {
    // The game under consultation (§2 strategic form, exact payoffs).
    let game = prisoners_dilemma().to_strategic();
    println!("Game: prisoner's dilemma, {} profiles", game.num_profiles());

    // --- Honest inventor -----------------------------------------------
    let mut authority = RationalityAuthority::new(
        Inventor::new(0, InventorBehavior::Honest),
        &[VerifierBehavior::Honest; 3],
    );
    let outcome = authority.consult(0, &GameSpec::Strategic(game.clone()));
    println!("\n[honest inventor]");
    println!("  advice bytes on the wire: {}", outcome.advice_bytes);
    println!("  session bytes total:      {}", outcome.session_bytes);
    for (verifier, accepted, detail) in &outcome.verdict_details {
        println!(
            "  {verifier}: {} — {detail}",
            if *accepted { "ACCEPT" } else { "REJECT" }
        );
    }
    assert!(outcome.adopted, "honest advice must be adopted");
    println!("  agent adopts the advice: play (defect, defect)");

    // --- Corrupt inventor ----------------------------------------------
    let mut authority = RationalityAuthority::new(
        Inventor::new(0, InventorBehavior::Corrupt),
        &[VerifierBehavior::Honest; 3],
    );
    let outcome = authority.consult(0, &GameSpec::Strategic(game));
    println!("\n[corrupt inventor]");
    for (verifier, accepted, detail) in &outcome.verdict_details {
        println!(
            "  {verifier}: {} — {detail}",
            if *accepted { "ACCEPT" } else { "REJECT" }
        );
    }
    assert!(!outcome.adopted, "corrupt advice must be rejected");
    println!("  agent refuses the advice — the rationality authority did its job");
}
